// Batch-runner tests: result ordering, sweep expansion, error surfacing,
// and determinism under parallelism (identical RunResults whatever the pool
// size — the property every sweep bench and future sharded experiment
// relies on).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "test_support.hpp"

namespace sdrmpi {
namespace {

/// Everything a run reports that must be bit-identical across pool sizes.
std::string fingerprint(const core::RunResult& r) {
  std::string fp;
  fp += std::to_string(r.makespan) + "|";
  fp += std::to_string(r.events_executed) + "|";
  fp += std::to_string(r.context_switches) + "|";
  fp += std::to_string(r.app_sends) + "|";
  fp += std::to_string(r.data_frames) + "|";
  fp += std::to_string(r.ctl_frames) + "|";
  fp += std::to_string(r.unexpected) + "|";
  fp += std::to_string(r.duplicates_dropped) + "|";
  fp += std::to_string(r.protocol.acks_sent) + "|";
  fp += std::to_string(r.protocol.resends) + "|";
  fp += std::to_string(r.protocol.recoveries) + "|";
  for (const auto& s : r.slots) {
    fp += s.final_state + ":" + std::to_string(s.finish_time) + ":" +
          std::to_string(s.checksum) + ";";
  }
  return fp;
}

core::AppFn allreduce_app() {
  return [](mpi::Env& env) {
    double x = env.rank() + 1.0;
    x = env.world().allreduce_value(x, mpi::Op::Sum);
    util::Checksum cs;
    cs.add_double(x);
    env.report_checksum(cs.digest());
  };
}

TEST(RunMany, ResultsComeBackInInputOrder) {
  std::vector<core::RunConfig> configs;
  for (int n = 1; n <= 4; ++n) {
    core::RunConfig cfg;
    cfg.nranks = n;
    configs.push_back(cfg);
  }
  auto results = core::run_many(configs, allreduce_app(), {.threads = 4});
  ASSERT_EQ(results.size(), 4u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(test::run_clean(results[i]));
    EXPECT_EQ(results[i].slots.size(), i + 1);  // nranks = index + 1
  }
}

TEST(RunMany, EmptyInputIsFine) {
  auto results = core::run_many({}, allreduce_app());
  EXPECT_TRUE(results.empty());
}

TEST(RunMany, FactoryReceivesIndices) {
  std::vector<core::RunConfig> configs(3, core::RunConfig{});
  std::vector<std::size_t> seen;
  auto factory = [&seen](const core::RunConfig&, std::size_t i) {
    seen.push_back(i);
    return allreduce_app();
  };
  auto results = core::run_many(configs, factory, {.threads = 2});
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(results.size(), 3u);
}

TEST(RunMany, InvalidConfigRethrown) {
  core::RunConfig bad;
  bad.nranks = 0;
  EXPECT_THROW(
      { auto r = core::run_many({bad}, allreduce_app(), {.threads = 2}); },
      std::invalid_argument);
}

TEST(RunMany, ErrorNamesTheFailingPointIndex) {
  // 20 good configs with one bad one at index 17: the rethrown error keeps
  // its type and says which sweep point failed.
  std::vector<core::RunConfig> configs(20, test::quick_config(2, 1, core::ProtocolKind::Native));
  configs[17].nranks = 0;
  try {
    auto r = core::run_many(configs, allreduce_app(), {.threads = 4});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(std::string(e.what()).rfind("config[17]: ", 0), 0u)
        << "message was: " << e.what();
  }
}

TEST(RunMany, LowestFailingIndexWins) {
  std::vector<core::RunConfig> configs(8, test::quick_config(2, 1, core::ProtocolKind::Native));
  configs[3].nranks = 0;
  configs[6].nranks = -2;
  try {
    auto r = core::run_many(configs, allreduce_app(), {.threads = 8});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(std::string(e.what()).rfind("config[3]: ", 0), 0u)
        << "message was: " << e.what();
  }
}

TEST(RunMany, DeterministicAcrossPoolSizes) {
  // A sweep mixing protocols, a wildcard workload, and a crash+recovery
  // point: identical fingerprints on a 1-thread and an 8-thread pool.
  core::Sweep sweep;
  sweep.base = test::quick_config(2, 2, core::ProtocolKind::Sdr);
  sweep.protocols = {core::ProtocolKind::Native, core::ProtocolKind::Sdr,
                     core::ProtocolKind::Leader};
  auto configs = sweep.expand();
  core::RunConfig crash = test::quick_config(2, 2, core::ProtocolKind::Sdr);
  crash.faults.push_back({.slot = 3, .at_time = -1, .at_send = 5});
  crash.auto_recover = true;
  configs.push_back(crash);

  const auto app = test::small_workload("cg");
  auto serial = core::run_many(configs, app, {.threads = 1});
  auto parallel = core::run_many(configs, app, {.threads = 8});
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(test::run_clean(serial[i]));
    EXPECT_EQ(fingerprint(serial[i]), fingerprint(parallel[i]))
        << "config " << i << " diverged between pool sizes";
  }
  // And across repeated parallel executions.
  auto parallel2 = core::run_many(configs, app, {.threads = 8});
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(fingerprint(parallel[i]), fingerprint(parallel2[i]));
  }
}

TEST(Sweep, EmptyAxesYieldBase) {
  core::Sweep sweep;
  sweep.base = test::quick_config(3, 2, core::ProtocolKind::Mirror);
  auto configs = sweep.expand();
  ASSERT_EQ(configs.size(), 1u);
  EXPECT_EQ(configs[0].nranks, 3);
  EXPECT_EQ(configs[0].replication, 2);
  EXPECT_EQ(configs[0].protocol, core::ProtocolKind::Mirror);
}

TEST(Sweep, CrossProductOrderIsAxisMajor) {
  core::Sweep sweep;
  sweep.base = test::quick_config(2, 1, core::ProtocolKind::Sdr);
  sweep.protocols = {core::ProtocolKind::Sdr, core::ProtocolKind::Mirror};
  sweep.replications = {2, 3};
  auto configs = sweep.expand();
  ASSERT_EQ(configs.size(), 4u);
  EXPECT_EQ(configs[0].protocol, core::ProtocolKind::Sdr);
  EXPECT_EQ(configs[0].replication, 2);
  EXPECT_EQ(configs[1].replication, 3);
  EXPECT_EQ(configs[2].protocol, core::ProtocolKind::Mirror);
  EXPECT_EQ(configs[3].replication, 3);
}

TEST(Sweep, NativeCollapsesToSingleUnreplicatedPoint) {
  core::Sweep sweep;
  sweep.base = test::quick_config(2, 2, core::ProtocolKind::Sdr);
  sweep.protocols = {core::ProtocolKind::Native, core::ProtocolKind::Sdr};
  sweep.replications = {2, 3};
  auto configs = sweep.expand();
  ASSERT_EQ(configs.size(), 3u);  // native once + sdr x {2,3}
  EXPECT_EQ(configs[0].protocol, core::ProtocolKind::Native);
  EXPECT_EQ(configs[0].replication, 1);
  EXPECT_EQ(configs[1].protocol, core::ProtocolKind::Sdr);
}

TEST(Sweep, TopologyAndTuningAreInnermostAxes) {
  // Full axis order: protocol > replication > faults > topology > tuning.
  core::Sweep sweep;
  sweep.base = test::quick_config(2, 2, core::ProtocolKind::Sdr);
  sweep.protocols = {core::ProtocolKind::Sdr, core::ProtocolKind::Mirror};
  net::TopologySpec flat;  // defaults: flat network
  net::TopologySpec tree = flat;
  tree.kind = net::TopologyKind::FatTree;
  sweep.topologies = {flat, tree};
  mpi::CollTuning t0;
  mpi::CollTuning t1 = t0;
  t1.allreduce_long_bytes = 1;
  sweep.coll_tunings = {t0, t1};
  auto configs = sweep.expand();
  ASSERT_EQ(configs.size(), 8u);
  // Tuning toggles fastest, then topology, then protocol.
  EXPECT_EQ(configs[0].net.topology, flat);
  EXPECT_EQ(configs[0].coll, t0);
  EXPECT_EQ(configs[1].net.topology, flat);
  EXPECT_EQ(configs[1].coll, t1);
  EXPECT_EQ(configs[2].net.topology, tree);
  EXPECT_EQ(configs[2].coll, t0);
  EXPECT_EQ(configs[3].net.topology, tree);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(configs[i].protocol, core::ProtocolKind::Sdr);
    EXPECT_EQ(configs[4 + i].protocol, core::ProtocolKind::Mirror);
  }
}

TEST(Sweep, FaultGridAxis) {
  core::Sweep sweep;
  sweep.base = test::quick_config(2, 2, core::ProtocolKind::Sdr);
  sweep.fault_sets = {{}, {{.slot = 2, .at_time = -1, .at_send = 3}}};
  auto configs = sweep.expand();
  ASSERT_EQ(configs.size(), 2u);
  EXPECT_TRUE(configs[0].faults.empty());
  ASSERT_EQ(configs[1].faults.size(), 1u);
  EXPECT_EQ(configs[1].faults[0].slot, 2);
}

TEST(Sweep, UniqueSeedsAreDistinctAndDeterministic) {
  core::Sweep sweep;
  sweep.base = test::quick_config(2, 2, core::ProtocolKind::Sdr);
  sweep.protocols = {core::ProtocolKind::Sdr, core::ProtocolKind::Mirror,
                     core::ProtocolKind::Leader};
  sweep.unique_seeds = true;
  auto a = sweep.expand();
  auto b = sweep.expand();
  ASSERT_EQ(a.size(), 3u);
  EXPECT_NE(a[0].seed, a[1].seed);
  EXPECT_NE(a[1].seed, a[2].seed);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].seed, b[i].seed);
  // The derivation is pinned: seed = hash_combine(base.seed, point index).
  // Changing it silently invalidates every content-addressed result store.
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seed, util::hash_combine(sweep.base.seed, i));
  }
}

TEST(World, ConstructionSeparableFromDrive) {
  // The launcher split: a World can be built, inspected, then driven.
  core::World world(test::quick_config(2, 2, core::ProtocolKind::Sdr),
                    allreduce_app());
  EXPECT_EQ(world.job().topo.nslots(), 4);
  EXPECT_EQ(world.engine().process_count(), 0u);  // nothing spawned yet
  auto outcome = world.drive();
  EXPECT_TRUE(outcome.clean());
  EXPECT_EQ(world.engine().process_count(), 4u);
  auto res = world.collect(outcome);
  EXPECT_TRUE(test::run_clean(res));
  EXPECT_TRUE(res.checksums_consistent());
}

}  // namespace
}  // namespace sdrmpi
