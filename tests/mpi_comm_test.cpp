// Communicator and group management: dup, split, create, group algebra —
// the operations SDR-MPI handles transparently via world splitting.
#include <gtest/gtest.h>

#include "test_support.hpp"

namespace sdrmpi {
namespace {

using test::quick_config;
using test::run_clean;

// ---------------------------------------------------------------- groups

TEST(Group, BasicAccessors) {
  mpi::Group g({10, 20, 30});
  EXPECT_EQ(g.size(), 3);
  EXPECT_EQ(g.slot(1), 20);
  EXPECT_EQ(g.rank_of(30), 2);
  EXPECT_EQ(g.rank_of(99), -1);
}

TEST(Group, Include) {
  mpi::Group g({10, 20, 30, 40});
  const int picks[] = {3, 0};
  auto sub = g.include(picks);
  EXPECT_EQ(sub.size(), 2);
  EXPECT_EQ(sub.slot(0), 40);
  EXPECT_EQ(sub.slot(1), 10);
}

TEST(Group, Exclude) {
  mpi::Group g({10, 20, 30, 40});
  const int drops[] = {1};
  auto sub = g.exclude(drops);
  EXPECT_EQ(sub.size(), 3);
  EXPECT_EQ(sub.slot(1), 30);
}

TEST(Group, SetOperations) {
  mpi::Group a({1, 2, 3});
  mpi::Group b({3, 4});
  EXPECT_EQ(a.set_union(b).size(), 4);
  EXPECT_EQ(a.set_intersection(b).size(), 1);
  EXPECT_EQ(a.set_intersection(b).slot(0), 3);
  EXPECT_EQ(a.set_difference(b).size(), 2);
  EXPECT_TRUE(a.set_difference(b) == mpi::Group({1, 2}));
}

TEST(Group, TranslateRanks) {
  mpi::Group a({5, 6, 7});
  mpi::Group b({7, 5});
  const int ranks[] = {0, 1, 2};
  const auto t = a.translate(ranks, b);
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0], 1);   // slot 5 is rank 1 in b
  EXPECT_EQ(t[1], -1);  // slot 6 absent
  EXPECT_EQ(t[2], 0);
}

// ---------------------------------------------------------------- comms

TEST(CommMgmt, DupIsIndependent) {
  auto res = core::run(
      quick_config(4, 1, core::ProtocolKind::Native), [](mpi::Env& env) {
        auto& w = env.world();
        auto dup = w.dup();
        EXPECT_EQ(dup.rank(), w.rank());
        EXPECT_EQ(dup.size(), w.size());
        // Messages on the dup must not match receives on the parent.
        if (env.rank() == 0) {
          double v = 1.0;
          auto r1 = dup.isend(std::span<const double>(&v, 1), 1, 5);
          double v2 = 2.0;
          auto r2 = w.isend(std::span<const double>(&v2, 1), 1, 5);
          w.wait(r1);
          w.wait(r2);
        } else if (env.rank() == 1) {
          // Receive from the parent first: must get 2.0, not the dup's 1.0.
          EXPECT_DOUBLE_EQ(w.recv_value<double>(0, 5), 2.0);
          EXPECT_DOUBLE_EQ(dup.recv_value<double>(0, 5), 1.0);
        }
        dup.barrier();
      });
  ASSERT_TRUE(run_clean(res));
}

TEST(CommMgmt, SplitEvenOdd) {
  auto res = core::run(
      quick_config(6, 1, core::ProtocolKind::Native), [](mpi::Env& env) {
        auto& w = env.world();
        auto half = w.split(env.rank() % 2, env.rank());
        ASSERT_TRUE(half.valid());
        EXPECT_EQ(half.size(), 3);
        EXPECT_EQ(half.rank(), env.rank() / 2);
        // Sum within each color: evens 0+2+4, odds 1+3+5.
        const double s =
            half.allreduce_value(static_cast<double>(env.rank()), mpi::Op::Sum);
        EXPECT_DOUBLE_EQ(s, env.rank() % 2 == 0 ? 6.0 : 9.0);
      });
  ASSERT_TRUE(run_clean(res));
}

TEST(CommMgmt, SplitWithKeyReordersRanks) {
  auto res = core::run(
      quick_config(4, 1, core::ProtocolKind::Native), [](mpi::Env& env) {
        auto& w = env.world();
        // Reverse the order via the key.
        auto rev = w.split(0, w.size() - env.rank());
        EXPECT_EQ(rev.rank(), w.size() - 1 - env.rank());
        const double s =
            rev.allreduce_value(static_cast<double>(rev.rank()), mpi::Op::Sum);
        EXPECT_DOUBLE_EQ(s, 6.0);
      });
  ASSERT_TRUE(run_clean(res));
}

TEST(CommMgmt, SplitUndefinedExcludes) {
  auto res = core::run(
      quick_config(4, 1, core::ProtocolKind::Native), [](mpi::Env& env) {
        auto& w = env.world();
        auto sub =
            w.split(env.rank() == 0 ? mpi::kUndefined : 1, env.rank());
        if (env.rank() == 0) {
          EXPECT_FALSE(sub.valid());
        } else {
          ASSERT_TRUE(sub.valid());
          EXPECT_EQ(sub.size(), 3);
          sub.barrier();
        }
        // A later collective on the parent still works for everyone.
        w.barrier();
      });
  ASSERT_TRUE(run_clean(res));
}

TEST(CommMgmt, CreateFromGroup) {
  auto res = core::run(
      quick_config(4, 1, core::ProtocolKind::Native), [](mpi::Env& env) {
        auto& w = env.world();
        const int picks[] = {0, 2};
        auto g = w.group().include(picks);
        auto sub = w.create(g);
        if (env.rank() == 0 || env.rank() == 2) {
          ASSERT_TRUE(sub.valid());
          EXPECT_EQ(sub.size(), 2);
          EXPECT_EQ(sub.rank(), env.rank() == 0 ? 0 : 1);
          const double s = sub.allreduce_value(1.0, mpi::Op::Sum);
          EXPECT_DOUBLE_EQ(s, 2.0);
        } else {
          EXPECT_FALSE(sub.valid());
        }
      });
  ASSERT_TRUE(run_clean(res));
}

TEST(CommMgmt, NestedSplits) {
  auto res = core::run(
      quick_config(8, 1, core::ProtocolKind::Native), [](mpi::Env& env) {
        auto& w = env.world();
        auto half = w.split(env.rank() / 4, env.rank());
        auto quarter = half.split(half.rank() / 2, half.rank());
        EXPECT_EQ(quarter.size(), 2);
        const double s = quarter.allreduce_value(1.0, mpi::Op::Sum);
        EXPECT_DOUBLE_EQ(s, 2.0);
      });
  ASSERT_TRUE(run_clean(res));
}

// The paper's transparency claim specifically covers communicator
// operations: the same program under dual replication must behave
// identically (Figure 6's world splitting).
struct CommProtoCase {
  core::ProtocolKind proto;
};

class CommReplicated : public ::testing::TestWithParam<CommProtoCase> {};

TEST_P(CommReplicated, SplitDupUnderReplication) {
  auto cfg = quick_config(6, 2, GetParam().proto);
  auto res = core::run(cfg, [](mpi::Env& env) {
    auto& w = env.world();
    auto dup = w.dup();
    auto half = dup.split(env.rank() % 2, env.rank());
    util::Checksum cs;
    cs.add_double(
        half.allreduce_value(static_cast<double>(env.rank()), mpi::Op::Sum));
    // Cross-communicator traffic.
    if (env.rank() == 0) {
      dup.send_value(3.5, 5, 1);
    } else if (env.rank() == 5) {
      cs.add_double(dup.recv_value<double>(0, 1));
    }
    w.barrier();
    env.report_checksum(cs.digest());
  });
  ASSERT_TRUE(run_clean(res));
  EXPECT_TRUE(res.checksums_consistent());
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, CommReplicated,
    ::testing::Values(CommProtoCase{core::ProtocolKind::Sdr},
                      CommProtoCase{core::ProtocolKind::Mirror},
                      CommProtoCase{core::ProtocolKind::Leader}),
    [](const auto& info) {
      return std::string(core::to_string(info.param.proto));
    });

// Failover inside a user-created communicator: the substitute's resends
// must land in the right context on the sibling world.
TEST(CommMgmt, FailoverInsideSplitComm) {
  auto app = [](mpi::Env& env) {
    auto& w = env.world();
    auto half = w.split(env.rank() / 2, env.rank());
    double v = env.rank();
    for (int i = 0; i < 12; ++i) {
      v = half.allreduce_value(v, mpi::Op::Sum) / half.size() + 1.0;
    }
    util::Checksum cs;
    cs.add_double(v);
    env.report_checksum(cs.digest());
  };
  auto native = core::run(quick_config(4, 1, core::ProtocolKind::Native), app);
  ASSERT_TRUE(run_clean(native));

  auto cfg = quick_config(4, 2, core::ProtocolKind::Sdr);
  cfg.faults.push_back({.slot = 5, .at_time = -1, .at_send = 7});
  auto res = core::run(cfg, app);
  ASSERT_TRUE(run_clean(res));
  for (const auto& slot : res.slots) {
    if (!slot.reported_checksum) continue;
    EXPECT_EQ(slot.checksum, native.checksum_of(slot.rank))
        << "slot " << slot.slot;
  }
}

}  // namespace
}  // namespace sdrmpi
