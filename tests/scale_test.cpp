// 1k-rank smoke: the engine and every replication protocol at 4x the
// paper's 256 ranks, on a symbolic CG skeleton.
//
// Two regressions this pins:
//   * correctness at scale — every protocol runs clean and reproduces the
//     native checksums (the transparency oracle) at a rank count where
//     per-peer state is genuinely sparse;
//   * host memory — peak RSS stays bounded. Any O(nranks) dense per-peer
//     structure (seq vectors, replica sets) or eager fiber stack comes
//     back as O(ranks^2) aggregate here and blows through the bound.
#include <gtest/gtest.h>
#include <sys/resource.h>

#include "test_support.hpp"

namespace sdrmpi {
namespace {

using test::quick_config;
using test::run_clean;

long peak_rss_mb() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
#ifdef __APPLE__
  return ru.ru_maxrss / (1024 * 1024);  // bytes on macOS
#else
  return ru.ru_maxrss / 1024;  // KB on Linux
#endif
}

// Weak-scaled symbolic CG: one matrix row per rank, two iterations. The
// communication graph (halo + allreduce tree) is what scales; per-rank
// work is trivial.
core::AppFn scale_workload() {
  util::Options opts;
  opts.set("nrows", "1024");
  opts.set("iters", "2");
  opts.set("symbolic", "true");
  return wl::make_workload("cg", opts);
}

TEST(ScaleSmoke, AllProtocolsCleanAt1kRanks) {
  constexpr int kRanks = 1024;
  const auto app = scale_workload();

  const auto native =
      core::run(quick_config(kRanks, 1, core::ProtocolKind::Native), app);
  ASSERT_TRUE(run_clean(native));

  const core::ProtocolKind protos[] = {
      core::ProtocolKind::Sdr, core::ProtocolKind::Mirror,
      core::ProtocolKind::Leader, core::ProtocolKind::RedMpiLeader,
      core::ProtocolKind::RedMpiSd};
  for (const auto proto : protos) {
    const auto rep = core::run(quick_config(kRanks, 2, proto), app);
    ASSERT_TRUE(run_clean(rep)) << core::to_string(proto);
    // Transparency at scale: spot-check ranks across the communicator.
    for (const int rank : {0, 1, 511, 1023}) {
      EXPECT_EQ(rep.checksum_of(rank), native.checksum_of(rank))
          << core::to_string(proto) << " rank " << rank;
    }
  }

  // 6 protocols x 2048 slots have run in this process by now. The bound
  // is ~10x above a healthy debug build and far under what any dense
  // per-peer representation costs at this rank count.
  EXPECT_LT(peak_rss_mb(), 1536) << "per-rank host state regressed";
}

}  // namespace
}  // namespace sdrmpi
