// Golden-trace regression corpus.
//
// A fixed set of configurations — every protocol on both fabric backends,
// plus failover and placement variants — is run and folded into a
// (final virtual time, counter digest) pair per case, then compared against
// the checked-in corpus in tests/golden/traces.txt. Any engine, protocol or
// network-model refactor that changes virtual-time behaviour shows up as a
// corpus diff, reviewed like any other code change.
//
// Regenerate after an *intentional* behaviour change with:
//   ./golden_trace_test --regen-golden
// (writes tests/golden/traces.txt in the source tree; commit the diff).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "sdrmpi/util/hash.hpp"
#include "test_support.hpp"

#ifndef SDRMPI_GOLDEN_DIR
#error "SDRMPI_GOLDEN_DIR must point at the checked-in golden corpus"
#endif

namespace sdrmpi {
namespace {

struct GoldenCase {
  std::string name;
  core::RunConfig cfg;
  std::string workload;
};

std::vector<GoldenCase> corpus() {
  using core::ProtocolKind;
  const ProtocolKind kinds[] = {ProtocolKind::Native,
                                ProtocolKind::Sdr,
                                ProtocolKind::Mirror,
                                ProtocolKind::Leader,
                                ProtocolKind::RedMpiLeader,
                                ProtocolKind::RedMpiSd};
  std::vector<GoldenCase> cases;
  for (const ProtocolKind p : kinds) {
    const int r = p == ProtocolKind::Native ? 1 : 2;
    {
      GoldenCase c{std::string(core::to_string(p)) + "/flat",
                   test::quick_config(4, r, p), "cg"};
      cases.push_back(std::move(c));
    }
    {
      GoldenCase c{std::string(core::to_string(p)) + "/fat-tree",
                   test::quick_config(4, r, p), "cg"};
      c.cfg.net.topology = net::TopologySpec::fat_tree(2, 2, 4.0);
      cases.push_back(std::move(c));
    }
  }
  // Failover: a world-1 replica dies mid-run under SDR.
  {
    GoldenCase c{"sdr/fat-tree/failover",
                 test::quick_config(4, 2, core::ProtocolKind::Sdr), "cg"};
    c.cfg.net.topology = net::TopologySpec::fat_tree(2, 2, 4.0);
    c.cfg.faults.push_back({.slot = 6, .at_time = -1, .at_send = 5});
    cases.push_back(std::move(c));
  }
  // Packed replica placement changes which links contend.
  {
    GoldenCase c{"sdr/fat-tree/pack",
                 test::quick_config(4, 2, core::ProtocolKind::Sdr), "hpccg"};
    c.cfg.net.topology = net::TopologySpec::fat_tree(2, 2, 4.0);
    c.cfg.net.topology.placement = net::PlacementPolicy::PackRanks;
    cases.push_back(std::move(c));
  }
  // Checkpoint/restart: pinned interval variants of the charge-forward cost
  // model (costs shrunk to the ~400us cg makespan), plus one mid-run
  // fail-stop fault that charges restart + rework.
  for (const Time iv : {Time{100000}, Time{150000}}) {
    GoldenCase c{"ckpt/iv" + std::to_string(iv / 1000) + "us",
                 test::quick_config(4, 1, core::ProtocolKind::Ckpt), "cg"};
    c.cfg.ckpt.interval = iv;
    c.cfg.ckpt.checkpoint_cost = 5000;
    c.cfg.ckpt.restart_cost = 20000;
    cases.push_back(std::move(c));
  }
  {
    GoldenCase c{"ckpt/iv100us/fault",
                 test::quick_config(4, 1, core::ProtocolKind::Ckpt), "cg"};
    c.cfg.ckpt.interval = 100000;
    c.cfg.ckpt.checkpoint_cost = 5000;
    c.cfg.ckpt.restart_cost = 20000;
    c.cfg.faults.push_back({.slot = 1, .at_time = 250000, .at_send = -1});
    cases.push_back(std::move(c));
  }
  // Collective-tuning variants: one pinned trace per non-default algorithm
  // on the synthetic collective mix (5 ranks — non-power-of-two — under
  // SDR r=2 so the pre/post folding paths are part of the pinned trace).
  {
    std::vector<mpi::CollTuning> points;
    for (const auto b :
         {mpi::BcastAlg::Binomial, mpi::BcastAlg::ScatterAllgather}) {
      mpi::CollTuning t;
      t.bcast = b;
      points.push_back(t);
    }
    for (const auto a :
         {mpi::AllreduceAlg::ReduceBcast, mpi::AllreduceAlg::RecursiveDoubling,
          mpi::AllreduceAlg::Rabenseifner}) {
      mpi::CollTuning t;
      t.allreduce = a;
      points.push_back(t);
    }
    for (const auto g : {mpi::AllgatherAlg::Ring, mpi::AllgatherAlg::Bruck}) {
      mpi::CollTuning t;
      t.allgather = g;
      points.push_back(t);
    }
    for (const auto a :
         {mpi::AlltoallAlg::Pairwise, mpi::AlltoallAlg::Bruck}) {
      mpi::CollTuning t;
      t.alltoall = a;
      points.push_back(t);
    }
    for (const mpi::CollTuning& t : points) {
      GoldenCase c{"coll/" + t.name(),
                   test::quick_config(5, 2, core::ProtocolKind::Sdr), "coll"};
      c.cfg.coll = t;
      cases.push_back(std::move(c));
    }
  }
  return cases;
}

/// Order-dependent digest over everything the determinism contract covers.
std::uint64_t trace_digest(const core::RunResult& r) {
  util::Checksum cs;
  cs.add_u64(static_cast<std::uint64_t>(r.makespan));
  cs.add_u64(r.app_sends);
  cs.add_u64(r.data_frames);
  cs.add_u64(r.ctl_frames);
  cs.add_u64(r.unexpected);
  cs.add_u64(r.duplicates_dropped);
  cs.add_u64(r.events_executed);
  cs.add_u64(r.context_switches);
  const core::ProtocolStats& p = r.protocol;
  for (std::uint64_t v :
       {p.acks_sent, p.acks_received, p.stale_acks, p.resends,
        p.decisions_sent, p.decisions_used, p.hashes_sent, p.hashes_compared,
        p.sdc_detected, p.failures_observed, p.recoveries, p.extra_copies}) {
    cs.add_u64(v);
  }
  const net::FabricStats& f = r.fabric;
  for (std::uint64_t v :
       {f.frames_sent, f.payload_bytes, f.frames_dropped_dead_dst,
        f.intra_node_frames, f.intra_switch_frames, f.inter_switch_frames,
        f.link_stalls, f.link_stall_ns, f.link_busy_ns}) {
    cs.add_u64(v);
  }
  for (const core::SlotResult& s : r.slots) {
    cs.add_u64(static_cast<std::uint64_t>(s.finish_time));
    cs.add_u64(s.checksum);
  }
  return cs.digest();
}

std::string golden_path() {
  return std::string(SDRMPI_GOLDEN_DIR) + "/traces.txt";
}

struct GoldenEntry {
  Time makespan = 0;
  std::uint64_t digest = 0;
};

std::map<std::string, GoldenEntry> load_golden() {
  std::map<std::string, GoldenEntry> out;
  std::ifstream in(golden_path());
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string name;
    GoldenEntry e;
    ls >> name >> e.makespan >> std::hex >> e.digest;
    if (!ls.fail()) out[name] = e;
  }
  return out;
}

TEST(GoldenTrace, MatchesCorpus) {
  const auto golden = load_golden();
  ASSERT_FALSE(golden.empty())
      << "no golden corpus at " << golden_path()
      << " — regenerate with: golden_trace_test --regen-golden";

  for (const GoldenCase& c : corpus()) {
    auto res = core::run(c.cfg, test::small_workload(c.workload));
    ASSERT_TRUE(test::run_clean(res)) << c.name;
    const auto it = golden.find(c.name);
    ASSERT_NE(it, golden.end())
        << "case '" << c.name << "' missing from corpus — regenerate with "
        << "--regen-golden and review the diff";
    EXPECT_EQ(res.makespan, it->second.makespan)
        << c.name << ": final virtual time drifted from the golden trace; "
        << "if intentional, regenerate with --regen-golden";
    EXPECT_EQ(trace_digest(res), it->second.digest)
        << c.name << ": counter digest drifted from the golden trace; "
        << "if intentional, regenerate with --regen-golden";
  }
}

// Every corpus case must itself be reproducible, otherwise the golden file
// would be flaky by construction.
TEST(GoldenTrace, CorpusCasesAreReproducible) {
  for (const GoldenCase& c : corpus()) {
    auto r1 = core::run(c.cfg, test::small_workload(c.workload));
    auto r2 = core::run(c.cfg, test::small_workload(c.workload));
    EXPECT_EQ(r1.makespan, r2.makespan) << c.name;
    EXPECT_EQ(trace_digest(r1), trace_digest(r2)) << c.name;
  }
}

}  // namespace

int regen_golden() {
  std::ofstream out(golden_path());
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", golden_path().c_str());
    return 1;
  }
  out << "# Golden virtual-time traces: <case> <makespan_ns> <digest_hex>\n"
      << "# Regenerate with: golden_trace_test --regen-golden (and review "
         "the diff!)\n";
  for (const GoldenCase& c : corpus()) {
    auto res = core::run(c.cfg, test::small_workload(c.workload));
    if (!res.clean()) {
      std::fprintf(stderr, "golden case '%s' did not run clean\n",
                   c.name.c_str());
      return 1;
    }
    std::ostringstream line;
    line << c.name << ' ' << res.makespan << ' ' << std::hex
         << trace_digest(res);
    out << line.str() << '\n';
    std::printf("%s\n", line.str().c_str());
  }
  std::printf("wrote %s\n", golden_path().c_str());
  return 0;
}

}  // namespace sdrmpi

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--regen-golden") {
      return sdrmpi::regen_golden();
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
