// Failure handling (paper §3.3, Figure 3): crash injection, substitute
// election, buffered-message resends, and application-level correctness
// after a replica fail-stop.
#include <gtest/gtest.h>

#include "test_support.hpp"

namespace sdrmpi {
namespace {

using test::quick_config;
using test::run_clean;
using test::small_workload;

/// A 2-rank iterated exchange reproducing Figure 3's message pattern:
/// rank 1 sends to rank 0, then rank 0 sends to rank 1, repeatedly.
core::AppFn figure3_app(int rounds) {
  return [rounds](mpi::Env& env) {
    auto& world = env.world();
    double v = env.rank() == 1 ? 1.0 : 0.0;
    for (int i = 0; i < rounds; ++i) {
      if (env.rank() == 1) {
        world.send_value(v, 0, 5);
        v = world.recv_value<double>(0, 6) + 1.0;
      } else if (env.rank() == 0) {
        const double got = world.recv_value<double>(1, 5);
        world.send_value(got * 2.0, 1, 6);
        v = got;
      }
    }
    util::Checksum cs;
    cs.add_double(v);
    env.report_checksum(cs.digest());
  };
}

TEST(Failure, Figure3ScenarioSurvivesReplicaCrash) {
  auto native =
      core::run(quick_config(2, 1, core::ProtocolKind::Native), figure3_app(10));
  ASSERT_TRUE(run_clean(native));

  // Crash p_1^1 (slot 3 = world 1, rank 1) right before its 4th send.
  auto cfg = quick_config(2, 2, core::ProtocolKind::Sdr);
  cfg.faults.push_back({.slot = 3, .at_time = -1, .at_send = 3});
  auto res = core::run(cfg, figure3_app(10));
  ASSERT_TRUE(run_clean(res));
  EXPECT_EQ(res.protocol.failures_observed, 3u);  // 3 alive observers

  // Every surviving process finished with the native result.
  EXPECT_EQ(res.checksum_of(0, 0), native.checksum_of(0));
  EXPECT_EQ(res.checksum_of(1, 0), native.checksum_of(1));
  EXPECT_EQ(res.checksum_of(0, 1), native.checksum_of(0));
  EXPECT_EQ(res.slots[3].final_state, "Crashed");
}

TEST(Failure, SubstituteResendsBufferedMessages) {
  // Crash the world-1 sender early: the world-0 replica must resend
  // whatever slot 2 (world 1, rank 0) had not acknowledged.
  auto cfg = quick_config(2, 2, core::ProtocolKind::Sdr);
  cfg.faults.push_back({.slot = 3, .at_time = -1, .at_send = 1});
  auto res = core::run(cfg, figure3_app(8));
  ASSERT_TRUE(run_clean(res));
  EXPECT_GT(res.protocol.resends, 0u);
}

struct FaultCase {
  const char* workload;
  int nranks;
  int crash_slot;
  std::int64_t at_send;
};

class WorkloadWithFault : public ::testing::TestWithParam<FaultCase> {};

// Each workload completes with native-equal checksums in every surviving
// process despite a mid-run replica crash.
TEST_P(WorkloadWithFault, SurvivorsMatchNative) {
  const auto [name, nranks, crash_slot, at_send] = GetParam();
  auto native = core::run(quick_config(nranks, 1, core::ProtocolKind::Native),
                          small_workload(name));
  ASSERT_TRUE(run_clean(native));

  auto cfg = quick_config(nranks, 2, core::ProtocolKind::Sdr);
  cfg.faults.push_back(
      {.slot = crash_slot, .at_time = -1, .at_send = at_send});
  auto res = core::run(cfg, small_workload(name));
  ASSERT_TRUE(run_clean(res));
  for (const auto& slot : res.slots) {
    if (!slot.reported_checksum) continue;
    EXPECT_EQ(slot.checksum, native.checksum_of(slot.rank))
        << name << " slot " << slot.slot << " diverged after failover";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WorkloadWithFault,
    ::testing::Values(FaultCase{"cg", 4, 5, 4}, FaultCase{"cg", 4, 1, 10},
                      FaultCase{"mg", 4, 6, 12}, FaultCase{"ft", 4, 7, 2},
                      FaultCase{"bt", 4, 4, 3}, FaultCase{"sp", 4, 5, 6},
                      FaultCase{"hpccg", 4, 6, 9}, FaultCase{"cm1", 4, 7, 5}),
    [](const auto& info) {
      return std::string(info.param.workload) + "_slot" +
             std::to_string(info.param.crash_slot) + "_send" +
             std::to_string(info.param.at_send);
    });

TEST(Failure, TimeBasedCrash) {
  auto cfg = quick_config(4, 2, core::ProtocolKind::Sdr);
  cfg.faults.push_back(
      {.slot = 6, .at_time = timeunits::microseconds(300.0), .at_send = -1});
  auto res = core::run(cfg, small_workload("cg"));
  ASSERT_TRUE(run_clean(res));
  EXPECT_EQ(res.slots[6].final_state, "Crashed");
  EXPECT_TRUE(res.checksums_consistent());
}

TEST(Failure, BothReplicasLostIsReported) {
  auto cfg = quick_config(2, 2, core::ProtocolKind::Sdr);
  cfg.faults.push_back({.slot = 1, .at_time = -1, .at_send = 2});
  cfg.faults.push_back({.slot = 3, .at_time = -1, .at_send = 2});
  cfg.time_limit = timeunits::seconds(1.0);
  auto res = core::run(cfg, figure3_app(10));
  // All replicas of rank 1 died: the run cannot be clean (the paper: the
  // system would have to fall back to checkpoint/restart).
  EXPECT_FALSE(res.clean());
  EXPECT_TRUE(res.rank_lost);
}

TEST(Failure, CrashDuringRendezvousIsRetransmitted) {
  // Force rendezvous traffic (payload above the eager threshold) and crash
  // the sender between its sends: the receiver must recover the payload
  // from the substitute's retransmission.
  const int n = 8192;  // doubles -> 64 KiB > 12 KiB eager threshold
  auto app = [n](mpi::Env& env) {
    auto& world = env.world();
    std::vector<double> buf(static_cast<std::size_t>(n), 0.0);
    if (env.rank() == 1) {
      for (int round = 0; round < 4; ++round) {
        for (int i = 0; i < n; ++i) buf[static_cast<std::size_t>(i)] = round + i * 1e-6;
        world.send(std::span<const double>(buf), 0, 9);
      }
    } else {
      util::Checksum cs;
      for (int round = 0; round < 4; ++round) {
        world.recv(std::span<double>(buf), 1, 9);
        cs.add_range(std::span<const double>(buf));
      }
      env.report_checksum(cs.digest());
    }
  };
  auto native = core::run(quick_config(2, 1, core::ProtocolKind::Native), app);
  ASSERT_TRUE(run_clean(native));

  for (std::int64_t at_send : {1, 2, 3}) {
    auto cfg = quick_config(2, 2, core::ProtocolKind::Sdr);
    cfg.faults.push_back({.slot = 3, .at_time = -1, .at_send = at_send});
    auto res = core::run(cfg, app);
    ASSERT_TRUE(run_clean(res)) << "crash at send " << at_send;
    EXPECT_EQ(res.checksum_of(0, 0), native.checksum_of(0));
    EXPECT_EQ(res.checksum_of(0, 1), native.checksum_of(0))
        << "world-1 receiver lost data after sender crash at send "
        << at_send;
  }
}

TEST(Failure, NativeCrashIsFatal) {
  // Without replication a crash kills the application (deadlock or lost
  // rank): the run must not be clean.
  auto cfg = quick_config(2, 1, core::ProtocolKind::Native);
  cfg.faults.push_back({.slot = 1, .at_time = -1, .at_send = 2});
  cfg.time_limit = timeunits::seconds(1.0);
  auto res = core::run(cfg, figure3_app(10));
  EXPECT_FALSE(res.clean());
}

TEST(Failure, MirrorSurvivesSenderCrashEagerTraffic) {
  auto native =
      core::run(quick_config(2, 1, core::ProtocolKind::Native), figure3_app(8));
  auto cfg = quick_config(2, 2, core::ProtocolKind::Mirror);
  cfg.faults.push_back({.slot = 3, .at_time = -1, .at_send = 2});
  auto res = core::run(cfg, figure3_app(8));
  ASSERT_TRUE(run_clean(res));
  EXPECT_EQ(res.checksum_of(0, 0), native.checksum_of(0));
  EXPECT_EQ(res.checksum_of(0, 1), native.checksum_of(0));
}

}  // namespace
}  // namespace sdrmpi
