// Determinism and send-determinism properties.
//
// The simulator is bit-deterministic; replicated executions must be
// reproducible run-to-run, and the send-determinism property the protocol
// relies on (identical per-channel send counts across replicas) must hold
// for every workload, including those with ANY_SOURCE receives.
#include <gtest/gtest.h>

#include "test_support.hpp"

namespace sdrmpi {
namespace {

using test::quick_config;
using test::run_clean;
using test::small_workload;

struct DetCase {
  const char* workload;
  core::ProtocolKind proto;
  int r;
};

class Reproducibility : public ::testing::TestWithParam<DetCase> {};

TEST_P(Reproducibility, IdenticalRunToRun) {
  const auto [name, proto, r] = GetParam();
  auto cfg = quick_config(4, r, proto);
  auto r1 = core::run(cfg, small_workload(name));
  auto r2 = core::run(cfg, small_workload(name));
  ASSERT_TRUE(run_clean(r1));
  ASSERT_TRUE(run_clean(r2));
  EXPECT_EQ(r1.makespan, r2.makespan);
  EXPECT_EQ(r1.data_frames, r2.data_frames);
  EXPECT_EQ(r1.ctl_frames, r2.ctl_frames);
  EXPECT_EQ(r1.unexpected, r2.unexpected);
  ASSERT_EQ(r1.slots.size(), r2.slots.size());
  for (std::size_t i = 0; i < r1.slots.size(); ++i) {
    EXPECT_EQ(r1.slots[i].checksum, r2.slots[i].checksum);
    EXPECT_EQ(r1.slots[i].finish_time, r2.slots[i].finish_time);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Reproducibility,
    ::testing::Values(DetCase{"cg", core::ProtocolKind::Native, 1},
                      DetCase{"cg", core::ProtocolKind::Sdr, 2},
                      DetCase{"hpccg", core::ProtocolKind::Sdr, 2},
                      DetCase{"hpccg", core::ProtocolKind::Leader, 2},
                      DetCase{"cm1", core::ProtocolKind::Sdr, 2},
                      DetCase{"ft", core::ProtocolKind::Mirror, 2}),
    [](const auto& info) {
      std::string name = std::string(info.param.workload) + "_" +
                         core::to_string(info.param.proto);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(Determinism, FaultyRunsAreReproducible) {
  auto cfg = quick_config(4, 2, core::ProtocolKind::Sdr);
  cfg.faults.push_back({.slot = 6, .at_time = -1, .at_send = 5});
  auto r1 = core::run(cfg, small_workload("cg"));
  auto r2 = core::run(cfg, small_workload("cg"));
  ASSERT_TRUE(run_clean(r1));
  EXPECT_EQ(r1.makespan, r2.makespan);
  EXPECT_EQ(r1.protocol.resends, r2.protocol.resends);
  EXPECT_EQ(r1.protocol.acks_received, r2.protocol.acks_received);
}

// Send-determinism validator: instrument an app to record its per-channel
// send counts; every replica of a rank must produce identical counts even
// though their internal wildcard matching order may differ.
TEST(SendDeterminism, ReplicasEmitIdenticalSendSequences) {
  for (const char* name : {"hpccg", "cm1", "cg"}) {
    auto cfg = quick_config(4, 2, core::ProtocolKind::Sdr);
    auto res = core::run(cfg, small_workload(name));
    ASSERT_TRUE(run_clean(res)) << name;
    // app_sends are counted per endpoint; by send-determinism world 0 and
    // world 1 totals must match exactly.
    // (RunResult aggregates; recompute per world via slot values not
    // available -> use the checksum consistency + frame parity instead.)
    EXPECT_EQ(res.data_frames % 2, 0u) << name;
    EXPECT_TRUE(res.checksums_consistent()) << name;
  }
}

TEST(SendDeterminism, WildcardMatchOrderDoesNotLeak) {
  // Two senders race into rank 0's wildcard receives; the sums are
  // order-independent (send-deterministic by construction), so both worlds
  // and the native run agree even though match order may differ.
  auto app = [](mpi::Env& env) {
    auto& w = env.world();
    if (env.rank() == 0) {
      double acc = 0.0;
      for (int i = 0; i < 2 * 20; ++i) {
        acc += w.recv_value<double>(mpi::kAnySource, 3);
      }
      util::Checksum cs;
      cs.add_double(acc);
      env.report_checksum(cs.digest());
      // Forward the result so other ranks' checksums depend on it too.
      for (int d = 1; d < w.size(); ++d) w.send_value(acc, d, 4);
    } else {
      for (int i = 0; i < 20; ++i) {
        if (env.rank() <= 2) w.send_value(env.rank() * 1.5 + i, 0, 3);
      }
      if (env.rank() <= 2) {
      }
      util::Checksum cs;
      cs.add_double(w.recv_value<double>(0, 4));
      env.report_checksum(cs.digest());
    }
  };
  // nranks=3: ranks 1 and 2 send 20 messages each.
  auto native = core::run(quick_config(3, 1, core::ProtocolKind::Native), app);
  ASSERT_TRUE(run_clean(native));
  auto rep = core::run(quick_config(3, 2, core::ProtocolKind::Sdr), app);
  ASSERT_TRUE(run_clean(rep));
  EXPECT_TRUE(rep.checksums_consistent());
  EXPECT_EQ(rep.checksum_of(0, 0), native.checksum_of(0));
}

TEST(Determinism, DifferentSeedsDifferentResults) {
  util::Options a, b;
  a.set("nrows", "256");
  b.set("nrows", "256");
  a.set("seed", "1");
  b.set("seed", "2");
  auto cfg = quick_config(4, 1, core::ProtocolKind::Native);
  auto r1 = core::run(cfg, wl::make_workload("cg", a));
  auto r2 = core::run(cfg, wl::make_workload("cg", b));
  EXPECT_NE(r1.checksum_of(0), r2.checksum_of(0));
}

TEST(Determinism, NetworkParamsChangeTimingNotResults) {
  auto cfg_ib = quick_config(4, 2, core::ProtocolKind::Sdr);
  auto cfg_eth = cfg_ib;
  cfg_eth.net = net::NetParams::gigabit_ethernet();
  auto fast = core::run(cfg_ib, small_workload("cg"));
  auto slow = core::run(cfg_eth, small_workload("cg"));
  ASSERT_TRUE(run_clean(fast));
  ASSERT_TRUE(run_clean(slow));
  EXPECT_GT(slow.makespan, fast.makespan);
  EXPECT_EQ(fast.checksum_of(0, 0), slow.checksum_of(0, 0));
}

}  // namespace
}  // namespace sdrmpi
