// Fast smoke tier (`ctest -L smoke`): every protocol family on both fabric
// backends runs a ping-pong and a replicated allreduce. Seconds, not
// minutes — the full matrix lives in the unit and fuzz tiers.
#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "sdrmpi/sdrmpi.hpp"

namespace sdrmpi {
namespace {

struct SmokeCase {
  core::ProtocolKind proto;
  net::TopologyKind topo;
};

core::RunConfig smoke_config(const SmokeCase& sc, int nranks) {
  core::RunConfig cfg;
  cfg.nranks = nranks;
  cfg.replication = sc.proto == core::ProtocolKind::Native ? 1 : 2;
  cfg.protocol = sc.proto;
  if (sc.topo == net::TopologyKind::FatTree) {
    cfg.net.topology = net::TopologySpec::fat_tree(2, 2, 2.0);
  }
  return cfg;
}

class Smoke : public ::testing::TestWithParam<SmokeCase> {};

TEST_P(Smoke, PingPong) {
  auto res = core::run(smoke_config(GetParam(), 2), [](mpi::Env& env) {
    auto& w = env.world();
    double v = 0;
    if (env.rank() == 0) {
      v = 42.5;
      w.send_value(v, 1);
      v = w.recv_value<double>(1);
    } else {
      v = w.recv_value<double>(0);
      w.send_value(v * 2, 0);
    }
    env.report_checksum(static_cast<std::uint64_t>(v));
  });
  ASSERT_TRUE(res.clean()) << (res.deadlock ? "deadlock" : "error");
  EXPECT_EQ(res.checksum_of(0), 85u);
  EXPECT_TRUE(res.checksums_consistent());
}

TEST_P(Smoke, Allreduce) {
  auto res = core::run(smoke_config(GetParam(), 4), [](mpi::Env& env) {
    double x = env.rank() + 1;
    x = env.world().allreduce_value(x, mpi::Op::Sum);
    env.report_checksum(static_cast<std::uint64_t>(x));
  });
  ASSERT_TRUE(res.clean());
  EXPECT_EQ(res.checksum_of(0, 0), 10u);
  if (res.slots.size() > 4) {
    EXPECT_EQ(res.checksum_of(0, 1), 10u);
  }
  EXPECT_TRUE(res.checksums_consistent());
}

INSTANTIATE_TEST_SUITE_P(
    ProtocolsTimesFabrics, Smoke,
    ::testing::Values(
        SmokeCase{core::ProtocolKind::Native, net::TopologyKind::Flat},
        SmokeCase{core::ProtocolKind::Native, net::TopologyKind::FatTree},
        SmokeCase{core::ProtocolKind::Sdr, net::TopologyKind::Flat},
        SmokeCase{core::ProtocolKind::Sdr, net::TopologyKind::FatTree},
        SmokeCase{core::ProtocolKind::Leader, net::TopologyKind::Flat},
        SmokeCase{core::ProtocolKind::Leader, net::TopologyKind::FatTree},
        SmokeCase{core::ProtocolKind::RedMpiSd, net::TopologyKind::Flat},
        SmokeCase{core::ProtocolKind::RedMpiSd, net::TopologyKind::FatTree}),
    [](const auto& info) {
      std::string name = std::string(core::to_string(info.param.proto)) + "_" +
                         net::to_string(info.param.topo);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace sdrmpi
