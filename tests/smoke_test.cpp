#include <gtest/gtest.h>
#include "sdrmpi/sdrmpi.hpp"

using namespace sdrmpi;

TEST(Smoke, NativePingPong) {
  core::RunConfig cfg;
  cfg.nranks = 2;
  auto res = core::run(cfg, [](mpi::Env& env) {
    auto& w = env.world();
    double v = 0;
    if (env.rank() == 0) {
      v = 42.5;
      w.send_value(v, 1);
      v = w.recv_value<double>(1);
    } else {
      v = w.recv_value<double>(0);
      w.send_value(v * 2, 0);
    }
    env.report_checksum(static_cast<std::uint64_t>(v));
  });
  ASSERT_TRUE(res.clean()) << (res.deadlock ? "deadlock" : "error");
  EXPECT_EQ(res.checksum_of(0), 85u);
}

TEST(Smoke, SdrAllreduce) {
  core::RunConfig cfg;
  cfg.nranks = 4;
  cfg.replication = 2;
  cfg.protocol = core::ProtocolKind::Sdr;
  auto res = core::run(cfg, [](mpi::Env& env) {
    double x = env.rank() + 1;
    x = env.world().allreduce_value(x, mpi::Op::Sum);
    env.report_checksum(static_cast<std::uint64_t>(x));
  });
  ASSERT_TRUE(res.clean());
  EXPECT_EQ(res.checksum_of(0, 0), 10u);
  EXPECT_EQ(res.checksum_of(0, 1), 10u);
  EXPECT_TRUE(res.checksums_consistent());
}
