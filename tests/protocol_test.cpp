// Protocol-level properties: message complexity (O(q*r) parallel vs
// O(q*r^2) mirror, paper §2.4), ack accounting, send-request gating, the
// ack-on-wait deadlock (§3.3), the eager-copy ablation, and redMPI SDC
// detection.
#include <gtest/gtest.h>

#include "test_support.hpp"

namespace sdrmpi {
namespace {

using test::quick_config;
using test::run_clean;
using test::small_workload;

core::AppFn exchange_app(int rounds, std::size_t bytes) {
  return [rounds, bytes](mpi::Env& env) {
    auto& world = env.world();
    std::vector<std::byte> out(bytes, std::byte{1});
    std::vector<std::byte> in(bytes);
    const int peer = env.rank() ^ 1;
    for (int i = 0; i < rounds; ++i) {
      world.sendrecv(std::span<const std::byte>(out), peer, 1,
                     std::span<std::byte>(in), peer, 1);
    }
    env.report_checksum(static_cast<std::uint64_t>(rounds));
  };
}

TEST(MessageComplexity, ParallelIsOqrMirrorIsOqr2) {
  const int rounds = 10;
  auto native = core::run(quick_config(2, 1, core::ProtocolKind::Native),
                          exchange_app(rounds, 64));
  ASSERT_TRUE(run_clean(native));
  const auto q = native.data_frames;  // application messages, native run

  auto sdr = core::run(quick_config(2, 2, core::ProtocolKind::Sdr),
                       exchange_app(rounds, 64));
  ASSERT_TRUE(run_clean(sdr));
  auto mirror = core::run(quick_config(2, 2, core::ProtocolKind::Mirror),
                          exchange_app(rounds, 64));
  ASSERT_TRUE(run_clean(mirror));

  // r = 2: parallel sends q*r data frames, mirror q*r^2.
  EXPECT_EQ(sdr.data_frames, q * 2);
  EXPECT_EQ(mirror.data_frames, q * 4);
  // Mirror needs no acks; SDR sends (r-1) acks per received message.
  EXPECT_EQ(mirror.protocol.acks_sent, 0u);
  EXPECT_EQ(sdr.protocol.acks_sent, q * 2);

  auto sdr3 = core::run(quick_config(2, 3, core::ProtocolKind::Sdr),
                        exchange_app(rounds, 64));
  ASSERT_TRUE(run_clean(sdr3));
  auto mirror3 = core::run(quick_config(2, 3, core::ProtocolKind::Mirror),
                           exchange_app(rounds, 64));
  ASSERT_TRUE(run_clean(mirror3));
  EXPECT_EQ(sdr3.data_frames, q * 3);
  EXPECT_EQ(mirror3.data_frames, q * 9);
}

TEST(AckAccounting, EveryAckIsConsumed) {
  auto res = core::run(quick_config(4, 2, core::ProtocolKind::Sdr),
                       small_workload("cg"));
  ASSERT_TRUE(run_clean(res));
  EXPECT_GT(res.protocol.acks_sent, 0u);
  EXPECT_EQ(res.protocol.acks_sent, res.protocol.acks_received);
  EXPECT_EQ(res.protocol.stale_acks, 0u);
}

TEST(AckGating, SendWaitsForCrossWorldAck) {
  // One-directional stream: rank 0 blasts messages at rank 1. Under SDR
  // every blocking send must wait for the sibling receiver's ack, so the
  // replicated makespan strictly exceeds native.
  auto app = [](mpi::Env& env) {
    auto& world = env.world();
    std::byte b{7};
    if (env.rank() == 0) {
      for (int i = 0; i < 50; ++i)
        world.send(std::span<const std::byte>(&b, 1), 1, 2);
    } else {
      for (int i = 0; i < 50; ++i)
        world.recv(std::span<std::byte>(&b, 1), 0, 2);
    }
    env.report_checksum(1);
  };
  auto native = core::run(quick_config(2, 1, core::ProtocolKind::Native), app);
  auto sdr = core::run(quick_config(2, 2, core::ProtocolKind::Sdr), app);
  ASSERT_TRUE(run_clean(native));
  ASSERT_TRUE(run_clean(sdr));
  EXPECT_GT(sdr.makespan, native.makespan);
}

TEST(Deadlock, AckOnWaitDeadlocks) {
  // Paper §3.3: Irecv; Send; Wait(recv) on both sides. If acks are only
  // emitted at application-level completion (MPI_Wait), both blocking
  // sends wait for acks that can never be sent.
  auto app = [](mpi::Env& env) {
    auto& world = env.world();
    const int peer = env.rank() ^ 1;
    double in = 0.0, out = env.rank();
    auto rreq = world.irecv(std::span<double>(&in, 1), peer, 4);
    world.send(std::span<const double>(&out, 1), peer, 4);
    world.wait(rreq);
    env.report_checksum(static_cast<std::uint64_t>(in));
  };

  auto ok = quick_config(2, 2, core::ProtocolKind::Sdr);
  auto res_ok = core::run(ok, app);
  EXPECT_TRUE(run_clean(res_ok)) << "ack-on-irecvComplete must not deadlock";

  auto bad = quick_config(2, 2, core::ProtocolKind::Sdr);
  bad.ack_on_wait = true;
  auto res_bad = core::run(bad, app);
  EXPECT_TRUE(res_bad.deadlock) << "ack-on-wait must deadlock (paper §3.3)";
}

TEST(Ablation, EagerCopyCompletionAvoidsAckWaitButCopies) {
  auto bad = quick_config(2, 2, core::ProtocolKind::Sdr);
  bad.ack_on_wait = true;
  bad.eager_copy_completion = true;  // the paper's proposed alternative
  auto app = [](mpi::Env& env) {
    auto& world = env.world();
    const int peer = env.rank() ^ 1;
    double in = 0.0, out = env.rank();
    auto rreq = world.irecv(std::span<double>(&in, 1), peer, 4);
    world.send(std::span<const double>(&out, 1), peer, 4);
    world.wait(rreq);
    env.report_checksum(static_cast<std::uint64_t>(in + 1));
  };
  auto res = core::run(bad, app);
  EXPECT_TRUE(run_clean(res))
      << "extra-copy completion breaks the deadlock cycle";
  EXPECT_GT(res.protocol.extra_copies, 0u);
}

TEST(RedMpi, DetectsInjectedCorruption) {
  for (auto kind :
       {core::ProtocolKind::RedMpiSd, core::ProtocolKind::RedMpiLeader}) {
    auto cfg = quick_config(4, 2, core::ProtocolKind::Sdr);
    cfg.protocol = kind;
    cfg.sdc.push_back({.slot = 5, .at_send = 3});
    auto res = core::run(cfg, small_workload("cg"));
    ASSERT_TRUE(run_clean(res));
    EXPECT_GE(res.protocol.sdc_detected, 1u) << core::to_string(kind);
    EXPECT_GT(res.protocol.hashes_compared, 0u);
  }
}

TEST(RedMpi, NoFalsePositives) {
  auto cfg = quick_config(4, 2, core::ProtocolKind::RedMpiSd);
  auto res = core::run(cfg, small_workload("hpccg"));
  ASSERT_TRUE(run_clean(res));
  EXPECT_EQ(res.protocol.sdc_detected, 0u);
  EXPECT_GT(res.protocol.hashes_compared, 0u);
}

TEST(RedMpi, SdrDoesNotDetectCorruption) {
  // SDR targets crashes, not SDC: an injected corruption silently diverges
  // the worlds' checksums (motivating redMPI's hash comparison).
  auto cfg = quick_config(2, 2, core::ProtocolKind::Sdr);
  cfg.sdc.push_back({.slot = 3, .at_send = 2});
  auto res = core::run(cfg, exchange_app(6, 64));
  ASSERT_TRUE(run_clean(res));
  EXPECT_EQ(res.protocol.sdc_detected, 0u);
}

TEST(Leader, DecisionsFlowForAnySource) {
  auto cfg = quick_config(4, 2, core::ProtocolKind::Leader);
  auto res = core::run(cfg, small_workload("hpccg"));
  ASSERT_TRUE(run_clean(res));
  // hpccg posts ANY_SOURCE halo receives: followers must have consumed
  // exactly the decisions the leaders published.
  EXPECT_GT(res.protocol.decisions_sent, 0u);
  EXPECT_EQ(res.protocol.decisions_sent, res.protocol.decisions_used);
}

TEST(Leader, NoDecisionsWithoutWildcards) {
  auto cfg = quick_config(4, 2, core::ProtocolKind::Leader);
  auto res = core::run(cfg, small_workload("cg"));
  ASSERT_TRUE(run_clean(res));
  EXPECT_EQ(res.protocol.decisions_sent, 0u);
}

TEST(Leader, MoreUnexpectedMessagesThanSdr) {
  // Followers delay posting wildcard receives until the decision arrives,
  // inflating the unexpected-message count (paper §3.1).
  auto sdr = core::run(quick_config(4, 2, core::ProtocolKind::Sdr),
                       small_workload("hpccg"));
  auto leader = core::run(quick_config(4, 2, core::ProtocolKind::Leader),
                          small_workload("hpccg"));
  ASSERT_TRUE(run_clean(sdr));
  ASSERT_TRUE(run_clean(leader));
  EXPECT_GT(leader.unexpected, sdr.unexpected);
}

TEST(Replication, TripleReplicationWorks) {
  auto native = core::run(quick_config(4, 1, core::ProtocolKind::Native),
                          small_workload("cg"));
  auto cfg = quick_config(4, 3, core::ProtocolKind::Sdr);
  auto res = core::run(cfg, small_workload("cg"));
  ASSERT_TRUE(run_clean(res));
  for (int rank = 0; rank < 4; ++rank) {
    for (int w = 0; w < 3; ++w) {
      EXPECT_EQ(res.checksum_of(rank, w), native.checksum_of(rank));
    }
  }
  // r = 3: every received message is acked to the two other worlds.
  EXPECT_EQ(res.protocol.acks_sent, res.protocol.acks_received);
}

TEST(Replication, TripleReplicationSurvivesCrash) {
  auto cfg = quick_config(2, 3, core::ProtocolKind::Sdr);
  cfg.faults.push_back({.slot = 5, .at_time = -1, .at_send = 3});
  auto res = core::run(cfg, exchange_app(10, 128));
  ASSERT_TRUE(run_clean(res));
}

}  // namespace
}  // namespace sdrmpi
