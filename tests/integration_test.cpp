// End-to-end integration scenarios combining protocols, faults, recovery,
// ablations and network models — the closest thing to the paper's full
// experimental campaign in test form.
#include <gtest/gtest.h>

#include <cstring>

#include "test_support.hpp"

namespace sdrmpi {
namespace {

using test::quick_config;
using test::run_clean;
using test::small_workload;

TEST(Integration, SdrEfficiencyStaysCloseToNative) {
  // The paper's headline: with dual replication the wall-clock time stays
  // close to native (efficiency ~50% given doubled resources). Our mini
  // kernels must show single-digit-ish overhead too.
  util::Options opts;
  opts.set("nrows", "32768");
  opts.set("compute-scale", "8");
  const auto app = wl::make_workload("cg", opts);
  auto native = core::run(quick_config(8, 1, core::ProtocolKind::Native), app);
  auto sdr = core::run(quick_config(8, 2, core::ProtocolKind::Sdr), app);
  ASSERT_TRUE(run_clean(native));
  ASSERT_TRUE(run_clean(sdr));
  const double ovh =
      util::overhead_percent(native.seconds(), sdr.seconds());
  EXPECT_GT(ovh, 0.0);
  EXPECT_LT(ovh, 10.0) << "SDR overhead should be single-digit (paper: <5%)";
}

TEST(Integration, AnySourceDoesNotDegradeSdr) {
  // Table 2's point as an invariant: SDR overhead with wildcard receives
  // must not exceed the leader-based protocol's.
  util::Options opts;
  const auto app = wl::make_workload("hpccg", opts);
  auto native = core::run(quick_config(8, 1, core::ProtocolKind::Native), app);
  auto sdr = core::run(quick_config(8, 2, core::ProtocolKind::Sdr), app);
  auto leader = core::run(quick_config(8, 2, core::ProtocolKind::Leader), app);
  ASSERT_TRUE(run_clean(sdr));
  ASSERT_TRUE(run_clean(leader));
  EXPECT_LE(sdr.makespan, leader.makespan);
  EXPECT_LT(util::overhead_percent(native.seconds(), sdr.seconds()), 8.0);
}

TEST(Integration, CrashPlusRecoveryPlusSecondCrash) {
  // After a successful recovery the system must tolerate a crash of the
  // OTHER replica (the recovered one takes over as substitute).
  struct St {
    int iter = 0;
    double v = 0.0;
  };
  auto app = [](mpi::Env& env) {
    auto& w = env.world();
    const int right = (env.rank() + 1) % w.size();
    const int left = (env.rank() - 1 + w.size()) % w.size();
    St st{0, 1.0 * env.rank()};
    if (env.restart_state().has_value()) {
      std::memcpy(&st, env.restart_state()->data(), sizeof(St));
    }
    for (; st.iter < 60; ++st.iter) {
      std::vector<std::byte> snap(sizeof(St));
      std::memcpy(snap.data(), &st, sizeof(St));
      env.offer_snapshot(std::move(snap));
      env.recovery_point();
      double in = 0.0;
      w.sendrecv(std::span<const double>(&st.v, 1), right, 0,
                 std::span<double>(&in, 1), left, 0);
      st.v = 0.5 * (st.v + in) + 0.01;
    }
    util::Checksum cs;
    cs.add_double(st.v);
    env.report_checksum(cs.digest());
  };

  auto native = core::run(quick_config(2, 1, core::ProtocolKind::Native), app);
  ASSERT_TRUE(run_clean(native));

  auto cfg = quick_config(2, 2, core::ProtocolKind::Sdr);
  cfg.auto_recover = true;
  cfg.faults.push_back({.slot = 3, .at_time = -1, .at_send = 10});
  // Second fault hits the *original* world-0 replica much later, after the
  // world-1 replica has been recovered.
  cfg.faults.push_back({.slot = 1, .at_time = -1, .at_send = 45});
  auto res = core::run(cfg, app);
  ASSERT_TRUE(run_clean(res));
  EXPECT_GE(res.protocol.recoveries, 1u);
  // Rank 1 survived both crashes in at least one world with the right
  // result.
  bool rank1_ok = false;
  for (const auto& slot : res.slots) {
    if (slot.rank == 1 && slot.reported_checksum &&
        slot.checksum == native.checksum_of(1)) {
      rank1_ok = true;
    }
  }
  EXPECT_TRUE(rank1_ok);
}

TEST(Integration, TwoIndependentFailuresDifferentRanks) {
  auto cfg = quick_config(4, 2, core::ProtocolKind::Sdr);
  cfg.faults.push_back({.slot = 5, .at_time = -1, .at_send = 4});
  cfg.faults.push_back({.slot = 2, .at_time = -1, .at_send = 9});
  auto native = core::run(quick_config(4, 1, core::ProtocolKind::Native),
                          small_workload("cg"));
  auto res = core::run(cfg, small_workload("cg"));
  ASSERT_TRUE(run_clean(res));
  for (const auto& slot : res.slots) {
    if (!slot.reported_checksum) continue;
    EXPECT_EQ(slot.checksum, native.checksum_of(slot.rank))
        << "slot " << slot.slot;
  }
}

TEST(Integration, SlowNetworkAmplifiesProtocolDifferences) {
  // On gigabit-ethernet-like latencies the leader protocol's decision
  // round-trips hurt much more; SDR's advantage must grow.
  auto app = [](mpi::Env& env) {
    auto& w = env.world();
    if (env.rank() == 0) {
      double acc = 0.0;
      for (int i = 0; i < 30 * (w.size() - 1); ++i) {
        acc += w.recv_value<double>(mpi::kAnySource, 1);
      }
      util::Checksum cs;
      cs.add_double(acc);
      env.report_checksum(cs.digest());
    } else {
      for (int i = 0; i < 30; ++i) {
        w.send_value(env.rank() + i * 0.5, 0, 1);
      }
      env.report_checksum(1);
    }
  };
  for (auto params : {net::NetParams::infiniband_20g(),
                      net::NetParams::gigabit_ethernet()}) {
    auto sdr_cfg = quick_config(4, 2, core::ProtocolKind::Sdr);
    sdr_cfg.net = params;
    auto leader_cfg = sdr_cfg;
    leader_cfg.protocol = core::ProtocolKind::Leader;
    auto sdr = core::run(sdr_cfg, app);
    auto leader = core::run(leader_cfg, app);
    ASSERT_TRUE(run_clean(sdr));
    ASSERT_TRUE(run_clean(leader));
    EXPECT_LT(sdr.makespan, leader.makespan);
  }
}

TEST(Integration, EagerCopyAblationKeepsCorrectness) {
  auto cfg = quick_config(4, 2, core::ProtocolKind::Sdr);
  cfg.eager_copy_completion = true;
  auto native = core::run(quick_config(4, 1, core::ProtocolKind::Native),
                          small_workload("mg"));
  auto res = core::run(cfg, small_workload("mg"));
  ASSERT_TRUE(run_clean(res));
  EXPECT_GT(res.protocol.extra_copies, 0u);
  EXPECT_EQ(res.checksum_of(0, 0), native.checksum_of(0));
  EXPECT_EQ(res.checksum_of(0, 1), native.checksum_of(0));
}

TEST(Integration, EagerCopyAblationSurvivesCrash) {
  // The buffer is still retained for failover even when requests complete
  // early.
  auto cfg = quick_config(2, 2, core::ProtocolKind::Sdr);
  cfg.eager_copy_completion = true;
  cfg.faults.push_back({.slot = 3, .at_time = -1, .at_send = 3});
  auto app = [](mpi::Env& env) {
    auto& w = env.world();
    double v = env.rank();
    for (int i = 0; i < 10; ++i) {
      const int peer = env.rank() ^ 1;
      double in = 0.0;
      w.sendrecv(std::span<const double>(&v, 1), peer, 0,
                 std::span<double>(&in, 1), peer, 0);
      v = 0.5 * (v + in) + 1;
    }
    util::Checksum cs;
    cs.add_double(v);
    env.report_checksum(cs.digest());
  };
  auto res = core::run(cfg, app);
  ASSERT_TRUE(run_clean(res));
  EXPECT_TRUE(res.checksums_consistent());
}

TEST(Integration, HeavyReplicationDegreeFour) {
  auto cfg = quick_config(2, 4, core::ProtocolKind::Sdr);
  auto native = core::run(quick_config(2, 1, core::ProtocolKind::Native),
                          small_workload("cg"));
  auto res = core::run(cfg, small_workload("cg"));
  ASSERT_TRUE(run_clean(res));
  for (int w = 0; w < 4; ++w) {
    EXPECT_EQ(res.checksum_of(0, w), native.checksum_of(0)) << "world " << w;
  }
  // Each reception acks the three other worlds.
  EXPECT_EQ(res.protocol.acks_sent % 3, 0u);
}

TEST(Integration, SixteenRanksReplicated) {
  util::Options opts;
  opts.set("nrows", "1024");
  opts.set("iters", "5");
  auto cfg = quick_config(16, 2, core::ProtocolKind::Sdr);
  auto res = core::run(cfg, wl::make_workload("cg", opts));
  ASSERT_TRUE(run_clean(res));
  EXPECT_TRUE(res.checksums_consistent());
  EXPECT_EQ(res.slots.size(), 32u);
}

}  // namespace
}  // namespace sdrmpi
