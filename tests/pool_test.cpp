// Tests for the zero-allocation hot-path layer: BufferPool size classes and
// reuse, Payload refcounting/aliasing and cross-pool isolation, InlineFn
// inline-vs-heap paths, EventQueue ordering + slab recycling, and the
// pinned allocations-per-message regression bound.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "sdrmpi/net/payload.hpp"
#include "sdrmpi/sim/event_queue.hpp"
#include "sdrmpi/sim/inline_fn.hpp"
#include "sdrmpi/util/alloc_counter.hpp"
#include "sdrmpi/util/buffer_pool.hpp"
#include "test_support.hpp"

namespace sdrmpi {
namespace {

// ------------------------------------------------------------- BufferPool

TEST(BufferPool, RoundsUpToPowerOfTwoClasses) {
  util::BufferPool pool;
  std::uint32_t cls = 0;

  void* a = pool.acquire(1, cls);
  EXPECT_EQ(util::BufferPool::capacity(cls), 64u);  // min class
  pool.release(a, cls);

  void* b = pool.acquire(65, cls);
  EXPECT_EQ(util::BufferPool::capacity(cls), 128u);
  pool.release(b, cls);

  void* c = pool.acquire(100000, cls);
  EXPECT_EQ(util::BufferPool::capacity(cls), 131072u);
  pool.release(c, cls);
}

TEST(BufferPool, ReusesReleasedSlabs) {
  util::BufferPool pool;
  std::uint32_t cls = 0;
  void* a = pool.acquire(1000, cls);
  pool.release(a, cls);
  EXPECT_EQ(pool.cached_slabs(), 1u);

  std::uint32_t cls2 = 0;
  void* b = pool.acquire(900, cls2);  // same 1024-byte class
  EXPECT_EQ(cls2, cls);
  EXPECT_EQ(b, a);  // the exact slab came back
  EXPECT_EQ(pool.stats().reuses, 1u);
  EXPECT_EQ(pool.stats().fresh_allocs, 1u);
  pool.release(b, cls2);
}

TEST(BufferPool, OversizeBypassesFreeLists) {
  util::BufferPool pool;
  std::uint32_t cls = 0;
  void* big = pool.acquire(util::BufferPool::kMaxClassBytes + 1, cls);
  EXPECT_EQ(cls, util::BufferPool::kOversize);
  EXPECT_EQ(pool.stats().oversize_allocs, 1u);
  pool.release(big, cls);
  EXPECT_EQ(pool.cached_slabs(), 0u);  // heap-freed, not cached
}

// ---------------------------------------------------------------- Payload

TEST(Payload, CopiesShareOneBufferViaRefcount) {
  util::BufferPool pool;
  const std::vector<std::byte> bytes(100, std::byte{0x42});
  net::Payload a = net::Payload::copy_of(&pool, bytes);
  EXPECT_EQ(a.size(), 100u);
  EXPECT_EQ(a.use_count(), 1u);

  net::Payload b = a;  // aliases, no copy
  EXPECT_EQ(a.use_count(), 2u);
  EXPECT_EQ(b.data(), a.data());
  EXPECT_EQ(b[99], std::byte{0x42});

  b.reset();
  EXPECT_EQ(a.use_count(), 1u);
  EXPECT_EQ(pool.cached_slabs(), 0u);  // still held by a
  a.reset();
  EXPECT_EQ(pool.cached_slabs(), 1u);  // slab returned
}

TEST(Payload, MoveTransfersOwnershipWithoutRefcountChange) {
  util::BufferPool pool;
  const std::vector<std::byte> bytes(32, std::byte{7});
  net::Payload a = net::Payload::copy_of(&pool, bytes);
  net::Payload b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(b.use_count(), 1u);
  EXPECT_EQ(b.size(), 32u);
}

TEST(Payload, SlabReturnsToItsOwnPool) {
  // Cross-Engine isolation: two pools, each gets its own slabs back.
  util::BufferPool pool_a;
  util::BufferPool pool_b;
  const std::vector<std::byte> bytes(500, std::byte{1});
  {
    net::Payload pa = net::Payload::copy_of(&pool_a, bytes);
    net::Payload pb = net::Payload::copy_of(&pool_b, bytes);
    // Handles may be destroyed in any order, long after the fabric that
    // made them; each slab must find its way home.
  }
  EXPECT_EQ(pool_a.cached_slabs(), 1u);
  EXPECT_EQ(pool_b.cached_slabs(), 1u);
  EXPECT_EQ(pool_a.stats().fresh_allocs, 1u);
  EXPECT_EQ(pool_b.stats().fresh_allocs, 1u);
}

TEST(Payload, PoollessHandlesUseTheHeap) {
  const std::vector<std::byte> bytes(64, std::byte{9});
  net::Payload p = net::Payload::copy_of(nullptr, bytes);
  EXPECT_EQ(p.size(), 64u);
  EXPECT_EQ(p[0], std::byte{9});
  // Destruction must not touch any pool (would crash on nullptr).
}

TEST(Payload, ConcatJoinsHeaderAndBody) {
  util::BufferPool pool;
  const std::vector<std::byte> head(8, std::byte{0xaa});
  const std::vector<std::byte> tail(8, std::byte{0xbb});
  net::Payload p = net::Payload::concat(&pool, head, tail);
  ASSERT_EQ(p.size(), 16u);
  EXPECT_EQ(p[7], std::byte{0xaa});
  EXPECT_EQ(p[8], std::byte{0xbb});
}

// ---------------------------------------------------------------- InlineFn

TEST(InlineFn, SmallCapturesStayInline) {
  int hits = 0;
  sim::InlineFn fn([&hits] { ++hits; });
  EXPECT_FALSE(fn.heap_allocated());
  fn();
  EXPECT_EQ(hits, 1);
}

TEST(InlineFn, DeliveryClosureFitsInline) {
  // The exact closure the fabric schedules per frame: an object pointer
  // plus a Delivery. This static guarantee is what makes the per-frame
  // schedule allocation-free.
  static_assert(sizeof(void*) + sizeof(net::Delivery) <=
                sim::InlineFn::kInlineBytes);
  util::BufferPool pool;
  net::Delivery d;
  d.data = net::Payload::copy_of(&pool, std::vector<std::byte>(40));
  bool delivered = false;
  void* ctx = &delivered;
  sim::InlineFn fn([ctx, d = std::move(d)]() mutable {
    *static_cast<bool*>(ctx) = d.data.size() == 40;
  });
  EXPECT_FALSE(fn.heap_allocated());
  fn();
  EXPECT_TRUE(delivered);
}

TEST(InlineFn, LargeCapturesFallBackToHeap) {
  struct Big {
    char blob[sim::InlineFn::kInlineBytes + 1] = {};
  } big;
  big.blob[0] = 1;
  int out = 0;
  sim::InlineFn fn([big, &out] { out = big.blob[0]; });
  EXPECT_TRUE(fn.heap_allocated());
  fn();
  EXPECT_EQ(out, 1);
}

TEST(InlineFn, MovePreservesTheCallable) {
  int hits = 0;
  sim::InlineFn a([&hits] { ++hits; });
  sim::InlineFn b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  b();
  EXPECT_EQ(hits, 1);
  sim::InlineFn c;
  c = std::move(b);
  c();
  EXPECT_EQ(hits, 2);
}

// -------------------------------------------------------------- EventQueue

TEST(EventQueue, PopsInTimestampThenSequenceOrder) {
  sim::EventQueue q;
  std::vector<std::pair<Time, std::uint64_t>> items;
  std::uint64_t seq = 0;
  std::mt19937 rng(7);
  for (int i = 0; i < 500; ++i) {
    items.emplace_back(static_cast<Time>(rng() % 50), seq++);
  }
  std::vector<std::pair<Time, std::uint64_t>> popped;
  for (auto [t, s] : items) {
    q.push(t, s, [] {});
  }
  std::vector<std::pair<Time, std::uint64_t>> expect = items;
  std::sort(expect.begin(), expect.end());
  while (!q.empty()) {
    const Time t = q.top_time();
    (void)q.pop();
    popped.emplace_back(t, 0);
  }
  ASSERT_EQ(popped.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(popped[i].first, expect[i].first) << "at " << i;
  }
}

TEST(EventQueue, RecyclesSlabSlots) {
  sim::EventQueue q;
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 16; ++i) {
      q.push(i, static_cast<std::uint64_t>(round * 16 + i), [] {});
    }
    while (!q.empty()) (void)q.pop()();
  }
  // The slab never outgrew the high-water mark of one round.
  EXPECT_LE(q.slab_capacity(), 16u);
}

TEST(EventQueue, PopReturnsTheMatchingCallback) {
  sim::EventQueue q;
  int fired = -1;
  q.push(20, 0, [&fired] { fired = 20; });
  q.push(10, 1, [&fired] { fired = 10; });
  auto fn = q.pop();
  fn();
  EXPECT_EQ(fired, 10);
}

// -------------------------------------------- allocation regression bounds

TEST(AllocRegression, SteadyStateEngineEventsAllocateNothing) {
  if (!util::alloc_counting_enabled()) {
    GTEST_SKIP() << "allocation counting disabled (sanitizer build)";
  }
  sim::Engine engine;
  struct Step {
    sim::Engine* eng;
    int left;
    void operator()() {
      if (left-- > 0) eng->schedule(eng->now() + 5, *this);
    }
  };
  // Warmup sizes the heap vector and the callback slab.
  engine.schedule(0, Step{&engine, 64});
  (void)engine.run();

  const std::uint64_t before = util::alloc_count();
  engine.schedule(engine.now() + 1, Step{&engine, 512});
  (void)engine.run();
  const std::uint64_t delta = util::alloc_count() - before;
  EXPECT_EQ(delta, 0u) << "schedule/pop cycle allocated on a warm engine";
}

TEST(AllocRegression, WarmFabricSendsStayUnderBound) {
  if (!util::alloc_counting_enabled()) {
    GTEST_SKIP() << "allocation counting disabled (sanitizer build)";
  }
  // One sender process per round; round 1 warms the pools, round 2 is
  // measured. The only allocations allowed in round 2 are the respawned
  // process bookkeeping — nothing per message.
  constexpr int kSends = 200;
  test::FabricHarness h(2);
  auto run_round = [&h] {
    h.engine.spawn("s", [&h] {
      // One staged payload; every send aliases it (refcount bump only).
      const net::Payload msg = h.blob(256);
      for (int i = 0; i < kSends; ++i) h.fabric->send(0, 1, msg);
    });
    (void)h.engine.run();
  };
  run_round();
  h.received[1].clear();  // keep the vector capacity, drop the payloads

  const std::uint64_t before = util::alloc_count();
  run_round();
  const std::uint64_t delta = util::alloc_count() - before;
  // Pinned: well under one allocation per message (measured: ~5 total for
  // the spawn + blob staging, independent of kSends).
  EXPECT_LT(delta, kSends / 4u)
      << "warm fabric send path allocates per message";
}

TEST(AllocRegression, PingPongMessagesStayUnderPinnedBound) {
  if (!util::alloc_counting_enabled()) {
    GTEST_SKIP() << "allocation counting disabled (sanitizer build)";
  }
  // Whole-stack bound, cold start included: one native run, small eager
  // messages. The pre-PR baseline sat at ~9 allocations per message; the
  // pooled hot path amortises to well under 2 (pinned with headroom).
  constexpr int kIters = 400;
  core::RunConfig cfg;
  cfg.nranks = 2;
  const std::uint64_t before = util::alloc_count();
  auto res = core::run(cfg, [](mpi::Env& env) {
    auto& world = env.world();
    std::vector<std::byte> buf(256, std::byte{1});
    const int peer = env.rank() ^ 1;
    for (int i = 0; i < kIters; ++i) {
      if (env.rank() == 0) {
        world.send(std::span<const std::byte>(buf), peer, 1);
        world.recv(std::span<std::byte>(buf), peer, 1);
      } else {
        world.recv(std::span<std::byte>(buf), peer, 1);
        world.send(std::span<const std::byte>(buf), peer, 1);
      }
    }
  });
  const std::uint64_t delta = util::alloc_count() - before;
  ASSERT_TRUE(test::run_clean(res));
  EXPECT_EQ(res.app_sends, 2u * kIters);
  const double per_msg =
      static_cast<double>(delta) / static_cast<double>(res.app_sends);
  EXPECT_LT(per_msg, 2.0) << "allocs/message regressed (delta=" << delta
                          << " over " << res.app_sends << " sends)";
}

TEST(AllocRegression, WarmCollectiveLoopStaysUnderPinnedBound) {
  if (!util::alloc_counting_enabled()) {
    GTEST_SKIP() << "allocation counting disabled (sanitizer build)";
  }
  // The collective engine's accumulators are pool slabs and its schedule
  // tables live in per-endpoint scratch, so a steady-state collective loop
  // must not touch the heap: block handles, combine scratch, fan-out
  // request lists and Bruck staging all recycle. Whole-run bound per
  // collective call, cold start included (pool warmup, app vectors).
  constexpr int kRounds = 100;
  constexpr int kCollsPerRound = 4;
  core::RunConfig cfg;
  cfg.nranks = 4;
  const std::uint64_t before = util::alloc_count();
  auto res = core::run(cfg, [](mpi::Env& env) {
    auto& w = env.world();
    std::vector<double> vec(64, 1.0 + env.rank());
    std::vector<double> out(64);
    std::vector<double> gathered(static_cast<std::size_t>(64 * w.size()));
    for (int round = 0; round < kRounds; ++round) {
      w.allreduce(std::span<const double>(vec), std::span<double>(out),
                  mpi::Op::Sum);
      w.allgather(std::span<const double>(vec),
                  std::span<double>(gathered));
      w.alltoall(std::span<const double>(
                     gathered.data(), static_cast<std::size_t>(w.size())),
                 std::span<double>(out.data(),
                                   static_cast<std::size_t>(w.size())));
      w.bcast(std::span<double>(vec), round % w.size());
    }
  });
  const std::uint64_t delta = util::alloc_count() - before;
  ASSERT_TRUE(test::run_clean(res));
  constexpr double kCollCalls = 4.0 * kRounds * kCollsPerRound;  // per rank
  const double per_coll = static_cast<double>(delta) / kCollCalls;
  EXPECT_LT(per_coll, 2.0)
      << "allocs per collective call regressed (delta=" << delta << " over "
      << kCollCalls << " collective calls)";
}

}  // namespace
}  // namespace sdrmpi
