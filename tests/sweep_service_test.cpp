// Sweep-service tests: the content-addressed cache contract end to end.
//
//  - config_key: canonical serialization collides iff configs are == —
//    every RunConfig field moves the digest, equal configs byte-match.
//  - result_codec: decode(encode(r)) == r for every RunResult field.
//  - ResultStore: persistence across reopen, torn-tail repair.
//  - SweepService: shard-layout invariance (1 chunk / 7 chunks / forked
//    process workers reproduce the run_many baseline bit-for-bit on a
//    50-point fuzz sweep), dedupe-dispatches-once, resume-after-kill
//    (a pre-populated store means only missing digests are simulated),
//    and "config[i]: " error attribution.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "sdrmpi/sweep/config_key.hpp"
#include "sdrmpi/sweep/frame_io.hpp"
#include "sdrmpi/sweep/result_codec.hpp"
#include "sdrmpi/sweep/worker.hpp"
#include "sdrmpi/util/rng.hpp"
#include "test_support.hpp"

namespace sdrmpi {
namespace {

// ------------------------------------------------------------- config_key

struct Mutation {
  const char* field;
  std::function<void(core::RunConfig&)> apply;
};

/// One mutation per RunConfig field (including every nested NetParams,
/// TopologySpec and CollTuning knob): the collide-iff-== contract says each
/// must flip the digest.
std::vector<Mutation> all_field_mutations() {
  using core::RunConfig;
  return {
      {"nranks", [](RunConfig& c) { c.nranks = 5; }},
      {"replication", [](RunConfig& c) { c.replication = 3; }},
      {"protocol",
       [](RunConfig& c) { c.protocol = core::ProtocolKind::Mirror; }},
      {"net.o_send_ns", [](RunConfig& c) { c.net.o_send_ns += 1.0; }},
      {"net.o_recv_ns", [](RunConfig& c) { c.net.o_recv_ns += 1.0; }},
      {"net.latency_ns", [](RunConfig& c) { c.net.latency_ns += 1.0; }},
      {"net.ns_per_byte", [](RunConfig& c) { c.net.ns_per_byte += 0.25; }},
      {"net.header_bytes", [](RunConfig& c) { c.net.header_bytes += 4; }},
      {"net.ctl_frame_bytes", [](RunConfig& c) { c.net.ctl_frame_bytes += 4; }},
      {"net.eager_threshold", [](RunConfig& c) { c.net.eager_threshold *= 2; }},
      {"net.call_cost_ns", [](RunConfig& c) { c.net.call_cost_ns += 1.0; }},
      {"topology.kind",
       [](RunConfig& c) { c.net.topology.kind = net::TopologyKind::FatTree; }},
      {"topology.placement",
       [](RunConfig& c) {
         c.net.topology.placement = net::PlacementPolicy::PackRanks;
       }},
      {"topology.ranks_per_node",
       [](RunConfig& c) { c.net.topology.ranks_per_node = 4; }},
      {"topology.nodes_per_switch",
       [](RunConfig& c) { c.net.topology.nodes_per_switch = 16; }},
      {"topology.oversubscription",
       [](RunConfig& c) { c.net.topology.oversubscription = 2.0; }},
      {"topology.link_ns_per_byte",
       [](RunConfig& c) { c.net.topology.link_ns_per_byte = 0.75; }},
      {"topology.intra_node_latency_ns",
       [](RunConfig& c) { c.net.topology.intra_node_latency_ns = 200.0; }},
      {"topology.intra_switch_latency_ns",
       [](RunConfig& c) { c.net.topology.intra_switch_latency_ns = 500.0; }},
      {"topology.inter_switch_latency_ns",
       [](RunConfig& c) { c.net.topology.inter_switch_latency_ns = 1900.0; }},
      {"coll.bcast",
       [](RunConfig& c) { c.coll.bcast = mpi::BcastAlg::Binomial; }},
      {"coll.allreduce",
       [](RunConfig& c) {
         c.coll.allreduce = mpi::AllreduceAlg::Rabenseifner;
       }},
      {"coll.allgather",
       [](RunConfig& c) { c.coll.allgather = mpi::AllgatherAlg::Ring; }},
      {"coll.alltoall",
       [](RunConfig& c) { c.coll.alltoall = mpi::AlltoallAlg::Bruck; }},
      {"coll.bcast_long_bytes",
       [](RunConfig& c) { c.coll.bcast_long_bytes *= 2; }},
      {"coll.allreduce_long_bytes",
       [](RunConfig& c) { c.coll.allreduce_long_bytes *= 2; }},
      {"coll.allgather_bruck_bytes",
       [](RunConfig& c) { c.coll.allgather_bruck_bytes *= 2; }},
      {"coll.alltoall_bruck_bytes",
       [](RunConfig& c) { c.coll.alltoall_bruck_bytes *= 2; }},
      {"coll.min_tree_comm", [](RunConfig& c) { c.coll.min_tree_comm = 7; }},
      {"faults(empty->one)",
       [](RunConfig& c) {
         c.faults.push_back({.slot = 2, .at_time = -1, .at_send = 3});
       }},
      {"faults.slot",
       [](RunConfig& c) {
         c.faults.push_back({.slot = 3, .at_time = -1, .at_send = 3});
       }},
      {"faults.at_time",
       [](RunConfig& c) {
         c.faults.push_back({.slot = 2, .at_time = 777, .at_send = 3});
       }},
      {"faults.at_send",
       [](RunConfig& c) {
         c.faults.push_back({.slot = 2, .at_time = -1, .at_send = 4});
       }},
      {"sdc(empty->one)",
       [](RunConfig& c) { c.sdc.push_back({.slot = 1, .at_send = 2}); }},
      {"sdc.slot",
       [](RunConfig& c) { c.sdc.push_back({.slot = 2, .at_send = 2}); }},
      {"sdc.at_send",
       [](RunConfig& c) { c.sdc.push_back({.slot = 1, .at_send = 3}); }},
      {"ckpt.interval",
       [](RunConfig& c) { c.ckpt.interval = timeunits::milliseconds(10.0); }},
      {"ckpt.checkpoint_cost",
       [](RunConfig& c) { c.ckpt.checkpoint_cost += 1000; }},
      {"ckpt.restart_cost", [](RunConfig& c) { c.ckpt.restart_cost += 1000; }},
      {"ckpt.verify_snapshots",
       [](RunConfig& c) { c.ckpt.verify_snapshots = true; }},
      {"detection_delay", [](RunConfig& c) { c.detection_delay += 17; }},
      {"auto_recover", [](RunConfig& c) { c.auto_recover = true; }},
      {"ack_on_wait", [](RunConfig& c) { c.ack_on_wait = true; }},
      {"eager_copy_completion",
       [](RunConfig& c) { c.eager_copy_completion = true; }},
      {"copy_cost_ns_per_byte",
       [](RunConfig& c) { c.copy_cost_ns_per_byte += 0.01; }},
      {"time_limit", [](RunConfig& c) { c.time_limit += 1000; }},
      {"seed", [](RunConfig& c) { c.seed ^= 0x1; }},
  };
}

TEST(ConfigKey, EqualConfigsSerializeAndDigestIdentically) {
  auto make = [] {
    core::RunConfig cfg = test::quick_config(3, 2, core::ProtocolKind::Sdr);
    cfg.faults.push_back({.slot = 4, .at_time = -1, .at_send = 2});
    cfg.net.topology = net::TopologySpec::fat_tree();
    return cfg;
  };
  const core::RunConfig a = make();
  const core::RunConfig b = make();
  ASSERT_EQ(a, b);
  EXPECT_EQ(sweep::serialize_config(a), sweep::serialize_config(b));
  EXPECT_EQ(sweep::config_key(a), sweep::config_key(b));
}

TEST(ConfigKey, EveryFieldMovesTheDigest) {
  const core::RunConfig base;  // all defaults
  const auto base_bytes = sweep::serialize_config(base);
  const auto base_key = sweep::config_key(base);

  std::vector<std::uint64_t> keys{base_key};
  std::vector<std::string> names{"base"};
  for (const Mutation& m : all_field_mutations()) {
    core::RunConfig mutated = base;
    m.apply(mutated);
    ASSERT_NE(mutated, base) << m.field << ": mutation was a no-op";
    EXPECT_NE(sweep::serialize_config(mutated), base_bytes)
        << m.field << " not covered by the canonical serialization";
    EXPECT_NE(sweep::config_key(mutated), base_key) << m.field;
    keys.push_back(sweep::config_key(mutated));
    names.push_back(m.field);
  }
  // No accidental collisions among the whole mutant family either.
  for (std::size_t i = 0; i < keys.size(); ++i) {
    for (std::size_t j = i + 1; j < keys.size(); ++j) {
      EXPECT_NE(keys[i], keys[j])
          << names[i] << " collides with " << names[j];
    }
  }
}

TEST(ConfigKey, VersionByteLeadsTheSerialization) {
  // Format changes must invalidate old stores: the version byte is folded
  // into every digest via byte 0 of the canonical serialization.
  const auto bytes = sweep::serialize_config(core::RunConfig{});
  ASSERT_FALSE(bytes.empty());
  EXPECT_EQ(std::to_integer<std::uint8_t>(bytes[0]), sweep::kConfigKeyVersion);
}

// ------------------------------------------------------------ result_codec

/// A RunResult with every field (and nested struct) away from its default.
core::RunResult fully_populated_result() {
  core::RunResult r;
  r.deadlock = true;
  r.time_limit_hit = true;
  r.rank_lost = true;
  r.errors = {"first error", "second\nerror"};
  r.makespan = 123456789;
  for (int s = 0; s < 3; ++s) {
    core::SlotResult slot;
    slot.slot = s;
    slot.rank = s % 2;
    slot.world = s / 2;
    slot.final_state = s == 2 ? "Crashed" : "Finished";
    slot.finish_time = 1000 + s;
    slot.checksum = 0xdeadbeefULL + static_cast<std::uint64_t>(s);
    slot.reported_checksum = s != 2;
    slot.values["mbps"] = 1234.5 + s;
    slot.values["iters"] = 17;
    r.slots.push_back(slot);
  }
  r.app_sends = 11;
  r.data_frames = 22;
  r.ctl_frames = 33;
  r.unexpected = 44;
  r.duplicates_dropped = 55;
  r.events_executed = 66;
  r.context_switches = 77;
  r.bytes_copied = 88;
  r.bytes_hashed = 99;
  r.protocol = {.acks_sent = 1,
                .acks_received = 2,
                .stale_acks = 3,
                .resends = 4,
                .decisions_sent = 5,
                .decisions_used = 6,
                .hashes_sent = 7,
                .hashes_compared = 8,
                .sdc_detected = 9,
                .failures_observed = 10,
                .recoveries = 11,
                .extra_copies = 12,
                .checkpoints_taken = 13,
                .restarts = 14,
                .rework_ns = 15};
  r.fabric = {.frames_sent = 13,
              .payload_bytes = 14,
              .frames_dropped_dead_dst = 15,
              .intra_node_frames = 16,
              .intra_switch_frames = 17,
              .inter_switch_frames = 18,
              .link_stalls = 19,
              .link_stall_ns = 20,
              .link_busy_ns = 21};
  return r;
}

TEST(ResultCodec, RoundTripsEveryField) {
  const core::RunResult r = fully_populated_result();
  const auto bytes = sweep::encode_result(r);
  const core::RunResult back = sweep::decode_result(bytes);
  EXPECT_EQ(back, r);  // field-wise via RunResult::operator==

  // Defaults round-trip too (empty vectors, zero counters).
  const core::RunResult empty;
  EXPECT_EQ(sweep::decode_result(sweep::encode_result(empty)), empty);
}

TEST(ResultCodec, RoundTripsRealRunOutput) {
  auto res = core::run(test::quick_config(3, 2, core::ProtocolKind::Sdr),
                       test::small_workload("cg"));
  ASSERT_TRUE(test::run_clean(res));
  EXPECT_EQ(sweep::decode_result(sweep::encode_result(res)), res);
}

TEST(ResultCodec, RejectsTruncationAndVersionMismatch) {
  auto bytes = sweep::encode_result(fully_populated_result());
  for (std::size_t cut : {std::size_t{0}, std::size_t{3}, bytes.size() - 1}) {
    const std::vector<std::byte> truncated(bytes.begin(),
                                           bytes.begin() +
                                               static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW({ auto r = sweep::decode_result(truncated); },
                 sweep::CodecError)
        << "cut at " << cut;
  }
  bytes[0] ^= std::byte{0xff};  // corrupt the version tag
  EXPECT_THROW({ auto r = sweep::decode_result(bytes); }, sweep::CodecError);
}

// ------------------------------------------------------------- ResultStore

class StoreFile {
 public:
  explicit StoreFile(const std::string& name)
      : path_((std::filesystem::temp_directory_path() /
               ("sdrmpi_" + name + ".store"))
                  .string()) {
    std::filesystem::remove(path_);
  }
  ~StoreFile() { std::filesystem::remove(path_); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(ResultStore, PersistsAcrossReopen) {
  StoreFile f("persist");
  const core::RunResult r = fully_populated_result();
  {
    sweep::ResultStore store(f.path());
    EXPECT_TRUE(store.persistent());
    EXPECT_EQ(store.loaded(), 0u);
    store.put(1, r);
    store.put(2, core::RunResult{});
    store.put(1, core::RunResult{});  // duplicate digest: ignored
    EXPECT_EQ(store.size(), 2u);
  }
  sweep::ResultStore store(f.path());
  EXPECT_EQ(store.loaded(), 2u);
  ASSERT_TRUE(store.contains(1));
  ASSERT_TRUE(store.contains(2));
  EXPECT_EQ(*store.lookup(1), r);  // first put won
  EXPECT_EQ(*store.lookup(2), core::RunResult{});
  EXPECT_FALSE(store.lookup(3).has_value());
}

TEST(ResultStore, RepairsTornTailRecord) {
  StoreFile f("torn");
  {
    sweep::ResultStore store(f.path());
    for (std::uint64_t d = 1; d <= 3; ++d) {
      store.put(d, fully_populated_result());
    }
  }
  const auto intact_size = std::filesystem::file_size(f.path());
  {
    // Simulate a crash mid-append: half a record of garbage at the tail.
    std::FILE* file = std::fopen(f.path().c_str(), "ab");
    ASSERT_NE(file, nullptr);
    const unsigned char garbage[13] = {0xff, 0x01, 0xfe, 0x02};
    std::fwrite(garbage, 1, sizeof garbage, file);
    std::fclose(file);
  }
  ASSERT_GT(std::filesystem::file_size(f.path()), intact_size);
  {
    sweep::ResultStore store(f.path());
    EXPECT_EQ(store.loaded(), 3u);  // intact prefix survives
    EXPECT_TRUE(store.contains(1));
    EXPECT_TRUE(store.contains(3));
  }
  // The torn tail was truncated away, not just skipped.
  EXPECT_EQ(std::filesystem::file_size(f.path()), intact_size);
  {
    sweep::ResultStore store(f.path());
    store.put(4, core::RunResult{});  // appends after the repaired tail
  }
  sweep::ResultStore store(f.path());
  EXPECT_EQ(store.loaded(), 4u);
  EXPECT_EQ(*store.lookup(4), core::RunResult{});
}

TEST(ResultStore, SecondOpenOfBusyStoreFails) {
  StoreFile f("lock");
  {
    sweep::ResultStore first(f.path());
    first.put(1, fully_populated_result());
    // flock is per open file description, so a second instance conflicts
    // even within one process — exactly the two-concurrent-sweeps
    // corruption the lock exists to prevent.
    try {
      sweep::ResultStore second(f.path());
      FAIL() << "expected the second open to fail while the store is locked";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("busy"), std::string::npos)
          << "message was: " << e.what();
    }
    // The rejected open must not have disturbed the live store.
    first.put(2, core::RunResult{});
  }
  // Closing releases the lock; the store replays intact.
  sweep::ResultStore reopened(f.path());
  EXPECT_EQ(reopened.loaded(), 2u);
  EXPECT_EQ(*reopened.lookup(1), fully_populated_result());
}

TEST(ResultStore, InMemoryStoreIsNotPersistent) {
  sweep::ResultStore store;
  EXPECT_FALSE(store.persistent());
  store.put(9, core::RunResult{});
  EXPECT_TRUE(store.contains(9));
  EXPECT_EQ(store.loaded(), 0u);
}

// ------------------------------------------------------------ SweepService

/// 50 fuzzed configs (protocol x topology x tuning x faults x seed) with
/// small deterministic apps — the shard-layout invariance workload.
struct FuzzSweep {
  std::vector<core::RunConfig> configs;
  std::vector<core::AppFn> apps;
};

core::AppFn tiny_ring_app(int iters) {
  return [iters](mpi::Env& env) {
    auto& w = env.world();
    const int n = w.size();
    double acc = env.rank() + 1.0;
    for (int it = 0; it < iters; ++it) {
      auto sreq = w.isend(std::span<const double>(&acc, 1),
                          (env.rank() + 1) % n, 5);
      acc += w.recv_value<double>((env.rank() + n - 1) % n, 5);
      w.wait(sreq);
    }
    util::Checksum cs;
    cs.add_double(acc);
    env.report_checksum(cs.digest());
  };
}

core::AppFn tiny_funnel_app(int msgs) {
  return [msgs](mpi::Env& env) {
    auto& w = env.world();
    const int n = w.size();
    if (env.rank() == 0) {
      double acc = 0.0;
      for (int i = 0; i < (n - 1) * msgs; ++i) {
        acc += w.recv_value<double>(mpi::kAnySource, 3);
      }
      util::Checksum cs;
      cs.add_double(acc);
      env.report_checksum(cs.digest());
    } else {
      for (int i = 0; i < msgs; ++i) {
        w.send_value(env.rank() * 0.75 + i, 0, 3);
      }
      env.report_checksum(0x5eedULL);
    }
  };
}

FuzzSweep draw_sweep(int count) {
  util::Rng rng(0xca5cadeULL);
  const core::ProtocolKind kinds[] = {
      core::ProtocolKind::Native, core::ProtocolKind::Sdr,
      core::ProtocolKind::Mirror, core::ProtocolKind::Leader,
      core::ProtocolKind::RedMpiSd};
  FuzzSweep s;
  for (int i = 0; i < count; ++i) {
    core::RunConfig cfg;
    const auto proto = kinds[rng.below(5)];
    cfg.protocol = proto;
    cfg.replication = proto == core::ProtocolKind::Native ? 1 : 2;
    cfg.nranks = static_cast<int>(2 + rng.below(3));
    if (rng.below(3) == 0) {
      cfg.net.topology = net::TopologySpec::fat_tree(
          static_cast<int>(1 + rng.below(3)), 2, 2.0);
    }
    if (rng.below(4) == 0) {
      cfg.coll.allreduce_long_bytes = 1u << (4 + rng.below(8));
    }
    cfg.seed = rng();
    cfg.time_limit = timeunits::seconds(30.0);
    if (proto == core::ProtocolKind::Sdr && rng.below(4) == 0) {
      cfg.faults.push_back(
          {.slot = cfg.nranks + static_cast<int>(rng.below(cfg.nranks)),
           .at_time = -1,
           .at_send = static_cast<std::int64_t>(1 + rng.below(4))});
    }
    s.configs.push_back(cfg);
    s.apps.push_back(rng.below(2) == 0
                         ? tiny_ring_app(static_cast<int>(2 + rng.below(4)))
                         : tiny_funnel_app(static_cast<int>(2 + rng.below(4))));
  }
  return s;
}

TEST(SweepService, ShardLayoutNeverChangesResults) {
  const FuzzSweep s = draw_sweep(50);
  auto factory = [&s](const core::RunConfig&, std::size_t i) {
    return s.apps[i];
  };
  const auto baseline = core::run_many(s.configs, factory, {.threads = 4});

  const sweep::ServiceOptions layouts[] = {
      {.workers = 1, .chunks = 1},                          // single chunk
      {.workers = 4, .chunks = 7},                          // odd sharding
      {.workers = 3, .chunks = 0, .process_workers = true}, // forked workers
  };
  for (const auto& layout : layouts) {
    sweep::SweepService service(layout);
    const auto runs = service.run(s.configs, factory);
    ASSERT_EQ(runs.size(), baseline.size());
    for (std::size_t i = 0; i < runs.size(); ++i) {
      EXPECT_EQ(runs[i], baseline[i])
          << "config " << i << " diverged (workers=" << layout.workers
          << " chunks=" << layout.chunks
          << " forked=" << layout.process_workers << ")";
    }
    EXPECT_LE(service.stats().max_dispatches_per_digest, 1u);
  }
}

TEST(SweepService, DedupeDispatchesEachDigestOnce) {
  FuzzSweep s = draw_sweep(10);
  // Duplicate the whole sweep three times over: 40 points, 10 digests.
  const std::size_t unique = s.configs.size();
  for (int copy = 0; copy < 3; ++copy) {
    for (std::size_t i = 0; i < unique; ++i) {
      s.configs.push_back(s.configs[i]);
      s.apps.push_back(s.apps[i]);
    }
  }
  std::vector<std::size_t> factory_calls;
  auto factory = [&s, &factory_calls](const core::RunConfig&, std::size_t i) {
    factory_calls.push_back(i);
    return s.apps[i];
  };
  sweep::SweepService service({.workers = 4});
  const auto runs = service.run(s.configs, factory);

  const auto& st = service.stats();
  EXPECT_EQ(st.points, 4 * unique);
  EXPECT_EQ(st.unique_points, unique);
  EXPECT_EQ(st.duplicates, 3 * unique);
  EXPECT_EQ(st.dispatched, unique);
  EXPECT_EQ(st.max_dispatches_per_digest, 1u);
  // Apps were built only for the first occurrences, in ascending order.
  ASSERT_EQ(factory_calls.size(), unique);
  for (std::size_t i = 0; i < unique; ++i) EXPECT_EQ(factory_calls[i], i);
  // Duplicates share the first occurrence's result bit-for-bit.
  for (std::size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i], runs[i % unique]) << "duplicate " << i;
  }
}

TEST(SweepService, ResumeCompletesOnlyMissingDigests) {
  StoreFile f("resume");
  const FuzzSweep s = draw_sweep(50);
  auto factory = [&s](const core::RunConfig&, std::size_t i) {
    return s.apps[i];
  };

  // A "killed" sweep that only got through the first 20 points.
  std::vector<core::RunConfig> prefix(s.configs.begin(),
                                      s.configs.begin() + 20);
  std::size_t prefix_unique = 0;
  {
    sweep::SweepService service({.workers = 2, .cache_path = f.path()});
    auto partial = service.run(prefix, factory);
    prefix_unique = service.stats().unique_points;
    EXPECT_EQ(service.store().size(), prefix_unique);
  }

  // The resumed sweep simulates exactly the digests the store is missing.
  sweep::SweepService service({.workers = 2, .cache_path = f.path()});
  EXPECT_EQ(service.store().loaded(), prefix_unique);
  const auto runs = service.run(s.configs, factory);
  const auto& st = service.stats();
  EXPECT_EQ(st.cache_hits, prefix_unique);
  EXPECT_EQ(st.dispatched, st.unique_points - prefix_unique);
  ASSERT_GT(st.dispatched, 0u);  // the resume actually had work to do

  // And the cached-plus-fresh mix equals a from-scratch baseline.
  const auto baseline = core::run_many(s.configs, factory, {.threads = 4});
  ASSERT_EQ(runs.size(), baseline.size());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i], baseline[i]) << "config " << i;
  }
}

TEST(SweepService, CachedRerunStreamsEveryPointAsCached) {
  StoreFile f("warm");
  const FuzzSweep s = draw_sweep(12);
  auto factory = [&s](const core::RunConfig&, std::size_t i) {
    return s.apps[i];
  };
  {
    sweep::SweepService cold({.workers = 2, .cache_path = f.path()});
    auto first = cold.run(s.configs, factory);
  }
  sweep::SweepService warm({.workers = 2, .cache_path = f.path()});
  std::size_t streamed = 0, streamed_cached = 0;
  auto runs = warm.run(s.configs, factory,
                       [&](const sweep::PointOutcome& out) {
                         ++streamed;
                         if (out.cached) ++streamed_cached;
                         EXPECT_NE(out.result, nullptr);
                       });
  EXPECT_EQ(warm.stats().dispatched, 0u);
  EXPECT_EQ(warm.stats().cache_hits, warm.stats().unique_points);
  EXPECT_EQ(streamed, warm.stats().unique_points);
  EXPECT_EQ(streamed_cached, streamed);
}

TEST(SweepService, ErrorNamesTheFailingInputIndex) {
  FuzzSweep s = draw_sweep(6);
  s.configs[4].nranks = 0;  // invalid: run() rejects it
  auto factory = [&s](const core::RunConfig&, std::size_t i) {
    return s.apps[i];
  };
  for (const bool forked : {false, true}) {
    sweep::SweepService service(
        {.workers = 2, .process_workers = forked});
    try {
      auto runs = service.run(s.configs, factory);
      FAIL() << "expected std::invalid_argument (forked=" << forked << ")";
    } catch (const std::invalid_argument& e) {
      EXPECT_EQ(std::string(e.what()).rfind("config[4]: ", 0), 0u)
          << "message was: " << e.what() << " (forked=" << forked << ")";
    }
  }
}

// ------------------------------------------------------- worker hardening

TEST(WorkerFrames, OversizedPayloadBecomesRuntimeErrorFrame) {
  // A payload longer than the u32 length field used to be cast down
  // silently, tearing the stream for every following frame. It must now
  // surface as an explicit runtime-error frame for the same point id.
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::size_t oversized = sweep::frame::kMaxFramePayload + 1;
  // The payload pointer is never dereferenced on the reject path.
  EXPECT_TRUE(sweep::frame::write_frame(fds[1], sweep::frame::kFrameResult,
                                        42, nullptr, oversized));
  sweep::frame::FrameHeader h;
  ASSERT_TRUE(sweep::frame::read_frame_header(fds[0], h));
  EXPECT_EQ(h.kind, sweep::frame::kFrameRuntimeError);
  EXPECT_EQ(h.id, 42u);
  std::string msg(h.len, '\0');
  ASSERT_TRUE(sweep::frame::read_all(fds[0], msg.data(), msg.size()));
  EXPECT_NE(msg.find("exceeds"), std::string::npos) << "message: " << msg;
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(WorkerFrames, MaximumLengthHeaderRoundTrips) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::byte b{0x5a};
  // Header-only check: claim 1 byte, the largest-representable length
  // stays for the reject test above (we can't allocate 4 GiB here).
  EXPECT_TRUE(sweep::frame::write_frame(fds[1], sweep::frame::kFrameResult,
                                        0xfeedface12345678ULL, &b, 1));
  sweep::frame::FrameHeader h;
  ASSERT_TRUE(sweep::frame::read_frame_header(fds[0], h));
  EXPECT_EQ(h.kind, sweep::frame::kFrameResult);
  EXPECT_EQ(h.id, 0xfeedface12345678ULL);
  EXPECT_EQ(h.len, 1u);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(WorkerForked, EveryFailingWorkerIsReported) {
  // Two workers, one point each, both children die before delivering:
  // the error used to name only the last failing worker.
  const core::RunConfig cfg = test::quick_config(2, 1,
                                                 core::ProtocolKind::Native);
  const core::AppFn die = [](mpi::Env&) { ::_exit(7); };
  std::vector<std::vector<sweep::WorkPoint>> chunks(2);
  chunks[0].push_back(sweep::WorkPoint{0, &cfg, &die});
  chunks[1].push_back(sweep::WorkPoint{1, &cfg, &die});
  try {
    sweep::run_forked(
        chunks, /*workers=*/2, [](std::size_t, core::RunResult&&) {},
        [](sweep::PointError&&) {});
    FAIL() << "expected WorkerError";
  } catch (const sweep::WorkerError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("sweep worker 0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("sweep worker 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("; "), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace sdrmpi
