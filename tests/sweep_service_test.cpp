// Sweep-service tests: the content-addressed cache contract end to end.
//
//  - config_key: canonical serialization collides iff configs are == —
//    every RunConfig field moves the digest, equal configs byte-match.
//  - result_codec: decode(encode(r)) == r for every RunResult field.
//  - ResultStore: persistence across reopen, torn-tail repair.
//  - SweepService: shard-layout invariance (1 chunk / 7 chunks / forked
//    process workers reproduce the run_many baseline bit-for-bit on a
//    50-point fuzz sweep), dedupe-dispatches-once, resume-after-kill
//    (a pre-populated store means only missing digests are simulated),
//    and "config[i]: " error attribution.
//  - Remote backend: TCP worker fleets (1/2/3 workers over loopback,
//    the real run_worker loop in threads) reproduce the pool-1 baseline
//    bit-for-bit through mid-chunk worker kills, lease expiry with a
//    suppressed late twin, heartbeat-deadline death, last-worker death
//    (local degradation), an empty fleet, an exhausted re-dispatch
//    budget (hard error), a version-mismatch registration reject, and
//    worker-pull scheduling across a fast+slow fleet.
//  - Auth: the self-contained SHA-256/HMAC against the FIPS / RFC 4231
//    vectors, and the registration challenge end to end (wrong secret,
//    missing secret, worker refusing an unauthenticated coordinator,
//    authenticated fleet bit-identical to the baseline).
//  - Handshake fuzz: truncated / oversized / bit-flipped registration
//    frames against a live coordinator (which must keep serving), and a
//    hostile coordinator against run_worker (which must throw cleanly).
//  - Supervisor: the restart policy unit-level, plus a SIGKILLed
//    supervised worker whose replacement finishes the sweep and a spent
//    restart budget degrading to local fallback.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "sdrmpi/sweep/auth.hpp"
#include "sdrmpi/sweep/config_key.hpp"
#include "sdrmpi/sweep/frame_io.hpp"
#include "sdrmpi/sweep/remote.hpp"
#include "sdrmpi/sweep/result_codec.hpp"
#include "sdrmpi/sweep/supervise.hpp"
#include "sdrmpi/sweep/transport.hpp"
#include "sdrmpi/sweep/worker.hpp"
#include "sdrmpi/util/rng.hpp"
#include "test_support.hpp"

namespace sdrmpi {
namespace {

// ------------------------------------------------------------- config_key

struct Mutation {
  const char* field;
  std::function<void(core::RunConfig&)> apply;
};

/// One mutation per RunConfig field (including every nested NetParams,
/// TopologySpec and CollTuning knob): the collide-iff-== contract says each
/// must flip the digest.
std::vector<Mutation> all_field_mutations() {
  using core::RunConfig;
  return {
      {"nranks", [](RunConfig& c) { c.nranks = 5; }},
      {"replication", [](RunConfig& c) { c.replication = 3; }},
      {"protocol",
       [](RunConfig& c) { c.protocol = core::ProtocolKind::Mirror; }},
      {"net.o_send_ns", [](RunConfig& c) { c.net.o_send_ns += 1.0; }},
      {"net.o_recv_ns", [](RunConfig& c) { c.net.o_recv_ns += 1.0; }},
      {"net.latency_ns", [](RunConfig& c) { c.net.latency_ns += 1.0; }},
      {"net.ns_per_byte", [](RunConfig& c) { c.net.ns_per_byte += 0.25; }},
      {"net.header_bytes", [](RunConfig& c) { c.net.header_bytes += 4; }},
      {"net.ctl_frame_bytes", [](RunConfig& c) { c.net.ctl_frame_bytes += 4; }},
      {"net.eager_threshold", [](RunConfig& c) { c.net.eager_threshold *= 2; }},
      {"net.call_cost_ns", [](RunConfig& c) { c.net.call_cost_ns += 1.0; }},
      {"topology.kind",
       [](RunConfig& c) { c.net.topology.kind = net::TopologyKind::FatTree; }},
      {"topology.placement",
       [](RunConfig& c) {
         c.net.topology.placement = net::PlacementPolicy::PackRanks;
       }},
      {"topology.ranks_per_node",
       [](RunConfig& c) { c.net.topology.ranks_per_node = 4; }},
      {"topology.nodes_per_switch",
       [](RunConfig& c) { c.net.topology.nodes_per_switch = 16; }},
      {"topology.oversubscription",
       [](RunConfig& c) { c.net.topology.oversubscription = 2.0; }},
      {"topology.link_ns_per_byte",
       [](RunConfig& c) { c.net.topology.link_ns_per_byte = 0.75; }},
      {"topology.intra_node_latency_ns",
       [](RunConfig& c) { c.net.topology.intra_node_latency_ns = 200.0; }},
      {"topology.intra_switch_latency_ns",
       [](RunConfig& c) { c.net.topology.intra_switch_latency_ns = 500.0; }},
      {"topology.inter_switch_latency_ns",
       [](RunConfig& c) { c.net.topology.inter_switch_latency_ns = 1900.0; }},
      {"coll.bcast",
       [](RunConfig& c) { c.coll.bcast = mpi::BcastAlg::Binomial; }},
      {"coll.allreduce",
       [](RunConfig& c) {
         c.coll.allreduce = mpi::AllreduceAlg::Rabenseifner;
       }},
      {"coll.allgather",
       [](RunConfig& c) { c.coll.allgather = mpi::AllgatherAlg::Ring; }},
      {"coll.alltoall",
       [](RunConfig& c) { c.coll.alltoall = mpi::AlltoallAlg::Bruck; }},
      {"coll.bcast_long_bytes",
       [](RunConfig& c) { c.coll.bcast_long_bytes *= 2; }},
      {"coll.allreduce_long_bytes",
       [](RunConfig& c) { c.coll.allreduce_long_bytes *= 2; }},
      {"coll.allgather_bruck_bytes",
       [](RunConfig& c) { c.coll.allgather_bruck_bytes *= 2; }},
      {"coll.alltoall_bruck_bytes",
       [](RunConfig& c) { c.coll.alltoall_bruck_bytes *= 2; }},
      {"coll.min_tree_comm", [](RunConfig& c) { c.coll.min_tree_comm = 7; }},
      {"faults(empty->one)",
       [](RunConfig& c) {
         c.faults.push_back({.slot = 2, .at_time = -1, .at_send = 3});
       }},
      {"faults.slot",
       [](RunConfig& c) {
         c.faults.push_back({.slot = 3, .at_time = -1, .at_send = 3});
       }},
      {"faults.at_time",
       [](RunConfig& c) {
         c.faults.push_back({.slot = 2, .at_time = 777, .at_send = 3});
       }},
      {"faults.at_send",
       [](RunConfig& c) {
         c.faults.push_back({.slot = 2, .at_time = -1, .at_send = 4});
       }},
      {"sdc(empty->one)",
       [](RunConfig& c) { c.sdc.push_back({.slot = 1, .at_send = 2}); }},
      {"sdc.slot",
       [](RunConfig& c) { c.sdc.push_back({.slot = 2, .at_send = 2}); }},
      {"sdc.at_send",
       [](RunConfig& c) { c.sdc.push_back({.slot = 1, .at_send = 3}); }},
      {"ckpt.interval",
       [](RunConfig& c) { c.ckpt.interval = timeunits::milliseconds(10.0); }},
      {"ckpt.checkpoint_cost",
       [](RunConfig& c) { c.ckpt.checkpoint_cost += 1000; }},
      {"ckpt.restart_cost", [](RunConfig& c) { c.ckpt.restart_cost += 1000; }},
      {"ckpt.verify_snapshots",
       [](RunConfig& c) { c.ckpt.verify_snapshots = true; }},
      {"detection_delay", [](RunConfig& c) { c.detection_delay += 17; }},
      {"auto_recover", [](RunConfig& c) { c.auto_recover = true; }},
      {"ack_on_wait", [](RunConfig& c) { c.ack_on_wait = true; }},
      {"eager_copy_completion",
       [](RunConfig& c) { c.eager_copy_completion = true; }},
      {"copy_cost_ns_per_byte",
       [](RunConfig& c) { c.copy_cost_ns_per_byte += 0.01; }},
      {"time_limit", [](RunConfig& c) { c.time_limit += 1000; }},
      {"seed", [](RunConfig& c) { c.seed ^= 0x1; }},
  };
}

TEST(ConfigKey, EqualConfigsSerializeAndDigestIdentically) {
  auto make = [] {
    core::RunConfig cfg = test::quick_config(3, 2, core::ProtocolKind::Sdr);
    cfg.faults.push_back({.slot = 4, .at_time = -1, .at_send = 2});
    cfg.net.topology = net::TopologySpec::fat_tree();
    return cfg;
  };
  const core::RunConfig a = make();
  const core::RunConfig b = make();
  ASSERT_EQ(a, b);
  EXPECT_EQ(sweep::serialize_config(a), sweep::serialize_config(b));
  EXPECT_EQ(sweep::config_key(a), sweep::config_key(b));
}

TEST(ConfigKey, EveryFieldMovesTheDigest) {
  const core::RunConfig base;  // all defaults
  const auto base_bytes = sweep::serialize_config(base);
  const auto base_key = sweep::config_key(base);

  std::vector<std::uint64_t> keys{base_key};
  std::vector<std::string> names{"base"};
  for (const Mutation& m : all_field_mutations()) {
    core::RunConfig mutated = base;
    m.apply(mutated);
    ASSERT_NE(mutated, base) << m.field << ": mutation was a no-op";
    EXPECT_NE(sweep::serialize_config(mutated), base_bytes)
        << m.field << " not covered by the canonical serialization";
    EXPECT_NE(sweep::config_key(mutated), base_key) << m.field;
    keys.push_back(sweep::config_key(mutated));
    names.push_back(m.field);
  }
  // No accidental collisions among the whole mutant family either.
  for (std::size_t i = 0; i < keys.size(); ++i) {
    for (std::size_t j = i + 1; j < keys.size(); ++j) {
      EXPECT_NE(keys[i], keys[j])
          << names[i] << " collides with " << names[j];
    }
  }
}

TEST(ConfigKey, VersionByteLeadsTheSerialization) {
  // Format changes must invalidate old stores: the version byte is folded
  // into every digest via byte 0 of the canonical serialization.
  const auto bytes = sweep::serialize_config(core::RunConfig{});
  ASSERT_FALSE(bytes.empty());
  EXPECT_EQ(std::to_integer<std::uint8_t>(bytes[0]), sweep::kConfigKeyVersion);
}

// ------------------------------------------------------------ result_codec

/// A RunResult with every field (and nested struct) away from its default.
core::RunResult fully_populated_result() {
  core::RunResult r;
  r.deadlock = true;
  r.time_limit_hit = true;
  r.rank_lost = true;
  r.errors = {"first error", "second\nerror"};
  r.makespan = 123456789;
  for (int s = 0; s < 3; ++s) {
    core::SlotResult slot;
    slot.slot = s;
    slot.rank = s % 2;
    slot.world = s / 2;
    slot.final_state = s == 2 ? "Crashed" : "Finished";
    slot.finish_time = 1000 + s;
    slot.checksum = 0xdeadbeefULL + static_cast<std::uint64_t>(s);
    slot.reported_checksum = s != 2;
    slot.values["mbps"] = 1234.5 + s;
    slot.values["iters"] = 17;
    r.slots.push_back(slot);
  }
  r.app_sends = 11;
  r.data_frames = 22;
  r.ctl_frames = 33;
  r.unexpected = 44;
  r.duplicates_dropped = 55;
  r.events_executed = 66;
  r.context_switches = 77;
  r.bytes_copied = 88;
  r.bytes_hashed = 99;
  r.protocol = {.acks_sent = 1,
                .acks_received = 2,
                .stale_acks = 3,
                .resends = 4,
                .decisions_sent = 5,
                .decisions_used = 6,
                .hashes_sent = 7,
                .hashes_compared = 8,
                .sdc_detected = 9,
                .failures_observed = 10,
                .recoveries = 11,
                .extra_copies = 12,
                .checkpoints_taken = 13,
                .restarts = 14,
                .rework_ns = 15};
  r.fabric = {.frames_sent = 13,
              .payload_bytes = 14,
              .frames_dropped_dead_dst = 15,
              .intra_node_frames = 16,
              .intra_switch_frames = 17,
              .inter_switch_frames = 18,
              .link_stalls = 19,
              .link_stall_ns = 20,
              .link_busy_ns = 21};
  r.mem = {.stack_bytes_reserved = 101,
           .stack_bytes_peak = 102,
           .stack_depth_peak = 103,
           .endpoint_bytes = 104,
           .fabric_bytes = 105,
           .payload_slab_bytes = 106};
  return r;
}

TEST(ResultCodec, RoundTripsEveryField) {
  const core::RunResult r = fully_populated_result();
  const auto bytes = sweep::encode_result(r);
  const core::RunResult back = sweep::decode_result(bytes);
  EXPECT_EQ(back, r);  // field-wise via RunResult::operator==

  // operator== deliberately ignores MemStats (host-side, not simulated
  // outcome), so pin its round trip field by field.
  EXPECT_EQ(back.mem.stack_bytes_reserved, r.mem.stack_bytes_reserved);
  EXPECT_EQ(back.mem.stack_bytes_peak, r.mem.stack_bytes_peak);
  EXPECT_EQ(back.mem.stack_depth_peak, r.mem.stack_depth_peak);
  EXPECT_EQ(back.mem.endpoint_bytes, r.mem.endpoint_bytes);
  EXPECT_EQ(back.mem.fabric_bytes, r.mem.fabric_bytes);
  EXPECT_EQ(back.mem.payload_slab_bytes, r.mem.payload_slab_bytes);

  // Defaults round-trip too (empty vectors, zero counters).
  const core::RunResult empty;
  EXPECT_EQ(sweep::decode_result(sweep::encode_result(empty)), empty);
}

TEST(ResultCodec, RoundTripsRealRunOutput) {
  auto res = core::run(test::quick_config(3, 2, core::ProtocolKind::Sdr),
                       test::small_workload("cg"));
  ASSERT_TRUE(test::run_clean(res));
  EXPECT_EQ(sweep::decode_result(sweep::encode_result(res)), res);
}

TEST(ResultCodec, RejectsTruncationAndVersionMismatch) {
  auto bytes = sweep::encode_result(fully_populated_result());
  for (std::size_t cut : {std::size_t{0}, std::size_t{3}, bytes.size() - 1}) {
    const std::vector<std::byte> truncated(bytes.begin(),
                                           bytes.begin() +
                                               static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW({ auto r = sweep::decode_result(truncated); },
                 sweep::CodecError)
        << "cut at " << cut;
  }
  bytes[0] ^= std::byte{0xff};  // corrupt the version tag
  EXPECT_THROW({ auto r = sweep::decode_result(bytes); }, sweep::CodecError);
}

// ------------------------------------------------------------- ResultStore

class StoreFile {
 public:
  explicit StoreFile(const std::string& name)
      : path_((std::filesystem::temp_directory_path() /
               ("sdrmpi_" + name + ".store"))
                  .string()) {
    std::filesystem::remove(path_);
  }
  ~StoreFile() { std::filesystem::remove(path_); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(ResultStore, PersistsAcrossReopen) {
  StoreFile f("persist");
  const core::RunResult r = fully_populated_result();
  {
    sweep::ResultStore store(f.path());
    EXPECT_TRUE(store.persistent());
    EXPECT_EQ(store.loaded(), 0u);
    store.put(1, r);
    store.put(2, core::RunResult{});
    store.put(1, core::RunResult{});  // duplicate digest: ignored
    EXPECT_EQ(store.size(), 2u);
  }
  sweep::ResultStore store(f.path());
  EXPECT_EQ(store.loaded(), 2u);
  ASSERT_TRUE(store.contains(1));
  ASSERT_TRUE(store.contains(2));
  EXPECT_EQ(*store.lookup(1), r);  // first put won
  EXPECT_EQ(*store.lookup(2), core::RunResult{});
  EXPECT_FALSE(store.lookup(3).has_value());
}

TEST(ResultStore, RepairsTornTailRecord) {
  StoreFile f("torn");
  {
    sweep::ResultStore store(f.path());
    for (std::uint64_t d = 1; d <= 3; ++d) {
      store.put(d, fully_populated_result());
    }
  }
  const auto intact_size = std::filesystem::file_size(f.path());
  {
    // Simulate a crash mid-append: half a record of garbage at the tail.
    std::FILE* file = std::fopen(f.path().c_str(), "ab");
    ASSERT_NE(file, nullptr);
    const unsigned char garbage[13] = {0xff, 0x01, 0xfe, 0x02};
    std::fwrite(garbage, 1, sizeof garbage, file);
    std::fclose(file);
  }
  ASSERT_GT(std::filesystem::file_size(f.path()), intact_size);
  {
    sweep::ResultStore store(f.path());
    EXPECT_EQ(store.loaded(), 3u);  // intact prefix survives
    EXPECT_TRUE(store.contains(1));
    EXPECT_TRUE(store.contains(3));
  }
  // The torn tail was truncated away, not just skipped.
  EXPECT_EQ(std::filesystem::file_size(f.path()), intact_size);
  {
    sweep::ResultStore store(f.path());
    store.put(4, core::RunResult{});  // appends after the repaired tail
  }
  sweep::ResultStore store(f.path());
  EXPECT_EQ(store.loaded(), 4u);
  EXPECT_EQ(*store.lookup(4), core::RunResult{});
}

TEST(ResultStore, SecondOpenOfBusyStoreFails) {
  StoreFile f("lock");
  {
    sweep::ResultStore first(f.path());
    first.put(1, fully_populated_result());
    // flock is per open file description, so a second instance conflicts
    // even within one process — exactly the two-concurrent-sweeps
    // corruption the lock exists to prevent.
    try {
      sweep::ResultStore second(f.path());
      FAIL() << "expected the second open to fail while the store is locked";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("busy"), std::string::npos)
          << "message was: " << e.what();
    }
    // The rejected open must not have disturbed the live store.
    first.put(2, core::RunResult{});
  }
  // Closing releases the lock; the store replays intact.
  sweep::ResultStore reopened(f.path());
  EXPECT_EQ(reopened.loaded(), 2u);
  EXPECT_EQ(*reopened.lookup(1), fully_populated_result());
}

TEST(ResultStore, InMemoryStoreIsNotPersistent) {
  sweep::ResultStore store;
  EXPECT_FALSE(store.persistent());
  store.put(9, core::RunResult{});
  EXPECT_TRUE(store.contains(9));
  EXPECT_EQ(store.loaded(), 0u);
}

// ------------------------------------------------------------ SweepService

/// 50 fuzzed configs (protocol x topology x tuning x faults x seed) with
/// small deterministic apps — the shard-layout invariance workload.
struct FuzzSweep {
  std::vector<core::RunConfig> configs;
  std::vector<core::AppFn> apps;
};

core::AppFn tiny_ring_app(int iters) {
  return [iters](mpi::Env& env) {
    auto& w = env.world();
    const int n = w.size();
    double acc = env.rank() + 1.0;
    for (int it = 0; it < iters; ++it) {
      auto sreq = w.isend(std::span<const double>(&acc, 1),
                          (env.rank() + 1) % n, 5);
      acc += w.recv_value<double>((env.rank() + n - 1) % n, 5);
      w.wait(sreq);
    }
    util::Checksum cs;
    cs.add_double(acc);
    env.report_checksum(cs.digest());
  };
}

core::AppFn tiny_funnel_app(int msgs) {
  return [msgs](mpi::Env& env) {
    auto& w = env.world();
    const int n = w.size();
    if (env.rank() == 0) {
      double acc = 0.0;
      for (int i = 0; i < (n - 1) * msgs; ++i) {
        acc += w.recv_value<double>(mpi::kAnySource, 3);
      }
      util::Checksum cs;
      cs.add_double(acc);
      env.report_checksum(cs.digest());
    } else {
      for (int i = 0; i < msgs; ++i) {
        w.send_value(env.rank() * 0.75 + i, 0, 3);
      }
      env.report_checksum(0x5eedULL);
    }
  };
}

FuzzSweep draw_sweep(int count) {
  util::Rng rng(0xca5cadeULL);
  const core::ProtocolKind kinds[] = {
      core::ProtocolKind::Native, core::ProtocolKind::Sdr,
      core::ProtocolKind::Mirror, core::ProtocolKind::Leader,
      core::ProtocolKind::RedMpiSd};
  FuzzSweep s;
  for (int i = 0; i < count; ++i) {
    core::RunConfig cfg;
    const auto proto = kinds[rng.below(5)];
    cfg.protocol = proto;
    cfg.replication = proto == core::ProtocolKind::Native ? 1 : 2;
    cfg.nranks = static_cast<int>(2 + rng.below(3));
    if (rng.below(3) == 0) {
      cfg.net.topology = net::TopologySpec::fat_tree(
          static_cast<int>(1 + rng.below(3)), 2, 2.0);
    }
    if (rng.below(4) == 0) {
      cfg.coll.allreduce_long_bytes = 1u << (4 + rng.below(8));
    }
    cfg.seed = rng();
    cfg.time_limit = timeunits::seconds(30.0);
    if (proto == core::ProtocolKind::Sdr && rng.below(4) == 0) {
      cfg.faults.push_back(
          {.slot = cfg.nranks + static_cast<int>(rng.below(cfg.nranks)),
           .at_time = -1,
           .at_send = static_cast<std::int64_t>(1 + rng.below(4))});
    }
    s.configs.push_back(cfg);
    s.apps.push_back(rng.below(2) == 0
                         ? tiny_ring_app(static_cast<int>(2 + rng.below(4)))
                         : tiny_funnel_app(static_cast<int>(2 + rng.below(4))));
  }
  return s;
}

TEST(SweepService, ShardLayoutNeverChangesResults) {
  const FuzzSweep s = draw_sweep(50);
  auto factory = [&s](const core::RunConfig&, std::size_t i) {
    return s.apps[i];
  };
  const auto baseline = core::run_many(s.configs, factory, {.threads = 4});

  const sweep::ServiceOptions layouts[] = {
      {.workers = 1, .chunks = 1},                          // single chunk
      {.workers = 4, .chunks = 7},                          // odd sharding
      {.workers = 3, .chunks = 0, .process_workers = true}, // forked workers
  };
  for (const auto& layout : layouts) {
    sweep::SweepService service(layout);
    const auto runs = service.run(s.configs, factory);
    ASSERT_EQ(runs.size(), baseline.size());
    for (std::size_t i = 0; i < runs.size(); ++i) {
      EXPECT_EQ(runs[i], baseline[i])
          << "config " << i << " diverged (workers=" << layout.workers
          << " chunks=" << layout.chunks
          << " forked=" << layout.process_workers << ")";
    }
    EXPECT_LE(service.stats().max_dispatches_per_digest, 1u);
  }
}

TEST(SweepService, DedupeDispatchesEachDigestOnce) {
  FuzzSweep s = draw_sweep(10);
  // Duplicate the whole sweep three times over: 40 points, 10 digests.
  const std::size_t unique = s.configs.size();
  for (int copy = 0; copy < 3; ++copy) {
    for (std::size_t i = 0; i < unique; ++i) {
      s.configs.push_back(s.configs[i]);
      s.apps.push_back(s.apps[i]);
    }
  }
  std::vector<std::size_t> factory_calls;
  auto factory = [&s, &factory_calls](const core::RunConfig&, std::size_t i) {
    factory_calls.push_back(i);
    return s.apps[i];
  };
  sweep::SweepService service({.workers = 4});
  const auto runs = service.run(s.configs, factory);

  const auto& st = service.stats();
  EXPECT_EQ(st.points, 4 * unique);
  EXPECT_EQ(st.unique_points, unique);
  EXPECT_EQ(st.duplicates, 3 * unique);
  EXPECT_EQ(st.dispatched, unique);
  EXPECT_EQ(st.max_dispatches_per_digest, 1u);
  // Apps were built only for the first occurrences, in ascending order.
  ASSERT_EQ(factory_calls.size(), unique);
  for (std::size_t i = 0; i < unique; ++i) EXPECT_EQ(factory_calls[i], i);
  // Duplicates share the first occurrence's result bit-for-bit.
  for (std::size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i], runs[i % unique]) << "duplicate " << i;
  }
}

TEST(ConfigKey, AppSpecSaltsTheDigest) {
  core::RunConfig cfg;
  cfg.nranks = 4;
  // Empty spec is the identity: single-app sweeps keep their digests.
  EXPECT_EQ(sweep::config_key(cfg, ""), sweep::config_key(cfg));
  EXPECT_NE(sweep::config_key(cfg, "cg"), sweep::config_key(cfg));
  EXPECT_NE(sweep::config_key(cfg, "cg"), sweep::config_key(cfg, "ft"));
  EXPECT_EQ(sweep::config_key(cfg, "cg"), sweep::config_key(cfg, "cg"));
}

TEST(SweepService, SpecKeepsSameConfigDifferentAppsApart) {
  // Two points with byte-identical configs running different programs are
  // different experiments. With the spec callback installed the service
  // simulates both; without it, config-only digests collapse them onto
  // one simulation (sound only when every point runs the same app).
  core::RunConfig cfg;
  cfg.nranks = 3;
  cfg.time_limit = timeunits::seconds(30.0);
  const std::vector<core::RunConfig> configs = {cfg, cfg};
  std::vector<core::AppFn> apps = {tiny_ring_app(3), tiny_funnel_app(2)};
  auto factory = [&apps](const core::RunConfig&, std::size_t i) {
    return apps[i];
  };

  sweep::ServiceOptions opts;
  opts.workers = 1;
  opts.spec = [](const core::RunConfig&, std::size_t i) {
    return std::string(i == 0 ? "ring" : "funnel");
  };
  sweep::SweepService salted(std::move(opts));
  const auto runs = salted.run(configs, factory);
  EXPECT_EQ(salted.stats().unique_points, 2u);
  EXPECT_EQ(salted.stats().dispatched, 2u);
  EXPECT_NE(runs[0], runs[1]) << "both programs must actually have run";

  sweep::SweepService unsalted({.workers = 1});
  const auto collapsed = unsalted.run(configs, factory);
  EXPECT_EQ(unsalted.stats().unique_points, 1u);
  EXPECT_EQ(collapsed[0], collapsed[1]);
}

TEST(SweepService, ResumeCompletesOnlyMissingDigests) {
  StoreFile f("resume");
  const FuzzSweep s = draw_sweep(50);
  auto factory = [&s](const core::RunConfig&, std::size_t i) {
    return s.apps[i];
  };

  // A "killed" sweep that only got through the first 20 points.
  std::vector<core::RunConfig> prefix(s.configs.begin(),
                                      s.configs.begin() + 20);
  std::size_t prefix_unique = 0;
  {
    sweep::SweepService service({.workers = 2, .cache_path = f.path()});
    auto partial = service.run(prefix, factory);
    prefix_unique = service.stats().unique_points;
    EXPECT_EQ(service.store().size(), prefix_unique);
  }

  // The resumed sweep simulates exactly the digests the store is missing.
  sweep::SweepService service({.workers = 2, .cache_path = f.path()});
  EXPECT_EQ(service.store().loaded(), prefix_unique);
  const auto runs = service.run(s.configs, factory);
  const auto& st = service.stats();
  EXPECT_EQ(st.cache_hits, prefix_unique);
  EXPECT_EQ(st.dispatched, st.unique_points - prefix_unique);
  ASSERT_GT(st.dispatched, 0u);  // the resume actually had work to do

  // And the cached-plus-fresh mix equals a from-scratch baseline.
  const auto baseline = core::run_many(s.configs, factory, {.threads = 4});
  ASSERT_EQ(runs.size(), baseline.size());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i], baseline[i]) << "config " << i;
  }
}

TEST(SweepService, CachedRerunStreamsEveryPointAsCached) {
  StoreFile f("warm");
  const FuzzSweep s = draw_sweep(12);
  auto factory = [&s](const core::RunConfig&, std::size_t i) {
    return s.apps[i];
  };
  {
    sweep::SweepService cold({.workers = 2, .cache_path = f.path()});
    auto first = cold.run(s.configs, factory);
  }
  sweep::SweepService warm({.workers = 2, .cache_path = f.path()});
  std::size_t streamed = 0, streamed_cached = 0;
  auto runs = warm.run(s.configs, factory,
                       [&](const sweep::PointOutcome& out) {
                         ++streamed;
                         if (out.cached) ++streamed_cached;
                         EXPECT_NE(out.result, nullptr);
                       });
  EXPECT_EQ(warm.stats().dispatched, 0u);
  EXPECT_EQ(warm.stats().cache_hits, warm.stats().unique_points);
  EXPECT_EQ(streamed, warm.stats().unique_points);
  EXPECT_EQ(streamed_cached, streamed);
}

TEST(SweepService, ErrorNamesTheFailingInputIndex) {
  FuzzSweep s = draw_sweep(6);
  s.configs[4].nranks = 0;  // invalid: run() rejects it
  auto factory = [&s](const core::RunConfig&, std::size_t i) {
    return s.apps[i];
  };
  for (const bool forked : {false, true}) {
    sweep::SweepService service(
        {.workers = 2, .process_workers = forked});
    try {
      auto runs = service.run(s.configs, factory);
      FAIL() << "expected std::invalid_argument (forked=" << forked << ")";
    } catch (const std::invalid_argument& e) {
      EXPECT_EQ(std::string(e.what()).rfind("config[4]: ", 0), 0u)
          << "message was: " << e.what() << " (forked=" << forked << ")";
    }
  }
}

// ------------------------------------------------------- worker hardening

TEST(WorkerFrames, OversizedPayloadBecomesRuntimeErrorFrame) {
  // A payload longer than the u32 length field used to be cast down
  // silently, tearing the stream for every following frame. It must now
  // surface as an explicit runtime-error frame for the same point id.
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::size_t oversized = sweep::frame::kMaxFramePayload + 1;
  // The payload pointer is never dereferenced on the reject path.
  EXPECT_TRUE(sweep::frame::write_frame(fds[1], sweep::frame::kFrameResult,
                                        42, nullptr, oversized));
  sweep::frame::FrameHeader h;
  ASSERT_TRUE(sweep::frame::read_frame_header(fds[0], h));
  EXPECT_EQ(h.kind, sweep::frame::kFrameRuntimeError);
  EXPECT_EQ(h.id, 42u);
  std::string msg(h.len, '\0');
  ASSERT_TRUE(sweep::frame::read_all(fds[0], msg.data(), msg.size()));
  EXPECT_NE(msg.find("exceeds"), std::string::npos) << "message: " << msg;
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(WorkerFrames, MaximumLengthHeaderRoundTrips) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::byte b{0x5a};
  // Header-only check: claim 1 byte, the largest-representable length
  // stays for the reject test above (we can't allocate 4 GiB here).
  EXPECT_TRUE(sweep::frame::write_frame(fds[1], sweep::frame::kFrameResult,
                                        0xfeedface12345678ULL, &b, 1));
  sweep::frame::FrameHeader h;
  ASSERT_TRUE(sweep::frame::read_frame_header(fds[0], h));
  EXPECT_EQ(h.kind, sweep::frame::kFrameResult);
  EXPECT_EQ(h.id, 0xfeedface12345678ULL);
  EXPECT_EQ(h.len, 1u);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(WorkerForked, EveryFailingWorkerIsReported) {
  // Two workers, one point each, both children die before delivering:
  // the error used to name only the last failing worker.
  const core::RunConfig cfg = test::quick_config(2, 1,
                                                 core::ProtocolKind::Native);
  const core::AppFn die = [](mpi::Env&) { ::_exit(7); };
  std::vector<std::vector<sweep::WorkPoint>> chunks(2);
  chunks[0].push_back(sweep::WorkPoint{0, &cfg, &die});
  chunks[1].push_back(sweep::WorkPoint{1, &cfg, &die});
  try {
    sweep::run_forked(
        chunks, /*workers=*/2, [](std::size_t, core::RunResult&&) {},
        [](sweep::PointError&&) {});
    FAIL() << "expected WorkerError";
  } catch (const sweep::WorkerError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("sweep worker 0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("sweep worker 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("; "), std::string::npos) << msg;
  }
}

// -------------------------------------------------- config wire round-trip

TEST(ConfigKey, DeserializeInvertsSerializeForEveryMutation) {
  // The remote protocol ships configs as canonical bytes; a dispatched
  // point must simulate from a RunConfig bit-identical to the
  // coordinator's, for every field the digest covers.
  const core::RunConfig base;
  EXPECT_EQ(sweep::deserialize_config(sweep::serialize_config(base)), base);
  for (const Mutation& m : all_field_mutations()) {
    core::RunConfig mutated = base;
    m.apply(mutated);
    const auto bytes = sweep::serialize_config(mutated);
    const core::RunConfig back = sweep::deserialize_config(bytes);
    EXPECT_EQ(back, mutated) << m.field;
    EXPECT_EQ(sweep::serialize_config(back), bytes) << m.field;
  }
  core::RunConfig rich = test::quick_config(3, 2, core::ProtocolKind::Sdr);
  rich.faults.push_back({.slot = 4, .at_time = -1, .at_send = 2});
  rich.sdc.push_back({.slot = 1, .at_send = 2});
  rich.net.topology = net::TopologySpec::fat_tree();
  EXPECT_EQ(sweep::deserialize_config(sweep::serialize_config(rich)), rich);
}

TEST(ConfigKey, DeserializeRejectsMalformedBytes) {
  core::RunConfig cfg = test::quick_config(3, 2, core::ProtocolKind::Sdr);
  cfg.faults.push_back({.slot = 4, .at_time = -1, .at_send = 2});
  auto bytes = sweep::serialize_config(cfg);
  for (std::size_t cut : {std::size_t{0}, std::size_t{1}, std::size_t{9},
                          bytes.size() - 1}) {
    const std::vector<std::byte> truncated(
        bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW({ auto c = sweep::deserialize_config(truncated); },
                 sweep::CodecError)
        << "cut at " << cut;
  }
  auto trailing = bytes;
  trailing.push_back(std::byte{0});
  EXPECT_THROW({ auto c = sweep::deserialize_config(trailing); },
               sweep::CodecError);
  auto wrong_version = bytes;
  wrong_version[0] ^= std::byte{0xff};
  EXPECT_THROW({ auto c = sweep::deserialize_config(wrong_version); },
               sweep::CodecError);
}

// ------------------------------------------------- frame transport on TCP

/// The exact wire bytes write_frame would emit, captured through a pipe.
std::vector<unsigned char> frame_image(std::uint8_t kind, std::uint64_t id,
                                       const std::string& payload) {
  int p[2];
  EXPECT_EQ(::pipe(p), 0);
  EXPECT_TRUE(sweep::frame::write_frame(p[1], kind, id, payload.data(),
                                        payload.size()));
  ::close(p[1]);
  std::vector<unsigned char> bytes(13 + payload.size());
  EXPECT_TRUE(sweep::frame::read_all(p[0], bytes.data(), bytes.size()));
  ::close(p[0]);
  return bytes;
}

TEST(FrameIo, ReassemblesDribbledSocketTransfers) {
  // On TCP, partial reads are the norm: a frame written byte-at-a-time
  // must reassemble losslessly, and the close after the last byte lands
  // exactly on a frame boundary (clean close, not a torn frame).
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  const std::string payload = "short transfers are the norm, not the edge";
  const auto image = frame_image(sweep::frame::kFrameResult, 77, payload);
  std::thread dribbler([&image, fd = sv[1]] {
    for (const unsigned char b : image) {
      EXPECT_TRUE(sweep::frame::write_all(fd, &b, 1));
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    ::close(fd);
  });
  sweep::frame::FrameHeader h;
  sweep::frame::IoError io;
  ASSERT_TRUE(sweep::frame::read_frame_header(sv[0], h, &io));
  EXPECT_EQ(h.kind, sweep::frame::kFrameResult);
  EXPECT_EQ(h.id, 77u);
  ASSERT_EQ(h.len, payload.size());
  std::string got(h.len, '\0');
  ASSERT_TRUE(sweep::frame::read_all(sv[0], got.data(), got.size(), &io));
  EXPECT_EQ(got, payload);
  EXPECT_FALSE(sweep::frame::read_frame_header(sv[0], h, &io));
  EXPECT_TRUE(io.eof);
  EXPECT_TRUE(io.clean_close);
  dribbler.join();
  ::close(sv[0]);
}

TEST(FrameIo, TornFrameIsEofButNotCleanClose) {
  const auto image = frame_image(sweep::frame::kFrameResult, 9, "payload!");
  // EOF after 5 of 13 header bytes: torn, not clean.
  {
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    ASSERT_TRUE(sweep::frame::write_all(sv[1], image.data(), 5));
    ::close(sv[1]);
    sweep::frame::FrameHeader h;
    sweep::frame::IoError io;
    EXPECT_FALSE(sweep::frame::read_frame_header(sv[0], h, &io));
    EXPECT_TRUE(io.eof);
    EXPECT_FALSE(io.clean_close);
    EXPECT_TRUE(sweep::frame::is_connection_lost(io));
    ::close(sv[0]);
  }
  // EOF mid-payload: the header parses, the payload read reports the tear.
  {
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    ASSERT_TRUE(sweep::frame::write_all(sv[1], image.data(), 13 + 3));
    ::close(sv[1]);
    sweep::frame::FrameHeader h;
    sweep::frame::IoError io;
    ASSERT_TRUE(sweep::frame::read_frame_header(sv[0], h, &io));
    std::string got(h.len, '\0');
    EXPECT_FALSE(sweep::frame::read_all(sv[0], got.data(), got.size(), &io));
    EXPECT_TRUE(io.eof);
    EXPECT_FALSE(io.clean_close);
    ::close(sv[0]);
  }
}

TEST(FrameIo, LostPeerSurfacesAsConnectionLostErrno) {
  // Writing to a peer that vanished must come back as an EPIPE-class
  // errno the scheduler maps to worker-lost — never as SIGPIPE death.
  sweep::ignore_sigpipe();
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  ::close(sv[0]);
  const std::string payload(1 << 16, 'x');
  sweep::frame::IoError io;
  bool wrote = true;
  for (int i = 0; i < 4 && wrote; ++i) {
    wrote = sweep::frame::write_frame(sv[1], sweep::frame::kFrameResult, 1,
                                      payload.data(), payload.size(), &io);
  }
  ASSERT_FALSE(wrote);
  EXPECT_FALSE(io.eof);
  EXPECT_TRUE(io.err == EPIPE || io.err == ECONNRESET) << "errno " << io.err;
  EXPECT_TRUE(sweep::frame::is_connection_lost(io));
  ::close(sv[1]);
}

// ---------------------------------------------------------- remote backend

/// Tuning shrunk to test scale: fast heartbeats, no lease expiry unless a
/// scenario opts in, generous deadlines so a loaded CI machine cannot
/// declare a healthy worker dead.
sweep::RemoteTuning fast_tuning() {
  sweep::RemoteTuning t;
  t.registration_wait_ms = 8000;
  t.heartbeat_interval_ms = 25;
  t.heartbeat_deadline_ms = 4000;
  t.lease_ms = 0;
  t.redispatch_budget = 5;
  t.backoff_base_ms = 5;
  t.backoff_cap_ms = 40;
  return t;
}

/// Remote-backend layout: loopback listener on an ephemeral port, specs
/// of the form "p<input index>".
sweep::ServiceOptions remote_options(sweep::RemoteTuning tuning) {
  sweep::ServiceOptions o;
  o.listen = "127.0.0.1:0";
  o.remote = tuning;
  o.spec = [](const core::RunConfig&, std::size_t i) {
    return "p" + std::to_string(i);
  };
  return o;
}

/// Resolves "p<index>" against the sweep's app table. Closures cannot
/// cross a real network; in-process worker threads share the table, which
/// keeps the full TCP protocol (handshake, heartbeats, leases, frames)
/// under test without spawning binaries.
sweep::AppResolver table_resolver(const FuzzSweep& s) {
  return [&s](const core::RunConfig&, const std::string& spec) {
    if (spec.size() < 2 || spec[0] != 'p') {
      throw std::invalid_argument("unknown spec: " + spec);
    }
    const std::size_t i = std::stoul(spec.substr(1));
    if (i >= s.apps.size()) throw std::invalid_argument("spec out of range");
    return s.apps[i];
  };
}

std::vector<core::RunResult> pool1_baseline(const FuzzSweep& s) {
  auto factory = [&s](const core::RunConfig&, std::size_t i) {
    return s.apps[i];
  };
  return core::run_many(s.configs, factory, {.threads = 1});
}

void expect_matches_baseline(const std::vector<core::RunResult>& runs,
                             const std::vector<core::RunResult>& baseline,
                             const std::string& what) {
  ASSERT_EQ(runs.size(), baseline.size()) << what;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i], baseline[i]) << what << ": config " << i << " diverged";
  }
}

/// A remote-backend service plus in-process threads running the real
/// run_worker loop. Destruction order matters and is owned here: the
/// service goes first (its destructor sends Shutdown frames), then the
/// worker threads join (run_worker returns once the coordinator is gone)
/// — members alone would destruct in the reverse, deadlocking order when
/// an ASSERT returns early.
class RemoteRig {
 public:
  explicit RemoteRig(sweep::ServiceOptions opts)
      : service(std::make_unique<sweep::SweepService>(std::move(opts))) {}
  ~RemoteRig() { shutdown(); }

  void start_worker(sweep::AppResolver resolver,
                    sweep::WorkerOptions wopts = {}) {
    errors_.push_back(std::make_unique<std::string>());
    std::string* err = errors_.back().get();
    threads_.emplace_back([addr = service->remote_address(),
                           resolver = std::move(resolver), wopts, err] {
      try {
        sweep::run_worker(addr, resolver, wopts);
      } catch (const std::exception& e) {
        *err = e.what();
      }
    });
  }

  [[nodiscard]] bool wait_for_workers(std::size_t n, int timeout_ms = 10000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (service->connected_workers() < n) {
      if (std::chrono::steady_clock::now() >= deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return true;
  }

  void shutdown() {
    service.reset();
    for (auto& t : threads_) {
      if (t.joinable()) t.join();
    }
  }

  /// Valid after shutdown() (the join is the synchronization point).
  [[nodiscard]] const std::string& worker_error(std::size_t i) const {
    return *errors_[i];
  }

  std::unique_ptr<sweep::SweepService> service;

 private:
  std::vector<std::thread> threads_;
  std::vector<std::unique_ptr<std::string>> errors_;
};

TEST(RemoteBackend, WorkerFleetsReproducePoolBaseline) {
  const FuzzSweep s = draw_sweep(24);
  auto factory = [&s](const core::RunConfig&, std::size_t i) {
    return s.apps[i];
  };
  const auto baseline = pool1_baseline(s);

  const struct {
    std::size_t nworkers;
    int chunks;
  } layouts[] = {{1, 1}, {2, 0}, {3, 5}};
  for (const auto& layout : layouts) {
    auto opts = remote_options(fast_tuning());
    opts.chunks = layout.chunks;
    RemoteRig rig(std::move(opts));
    for (std::size_t w = 0; w < layout.nworkers; ++w) {
      rig.start_worker(table_resolver(s),
                       {.name = "w" + std::to_string(w)});
    }
    ASSERT_TRUE(rig.wait_for_workers(layout.nworkers));
    const auto runs = rig.service->run(s.configs, factory);
    const auto& st = rig.service->stats();
    EXPECT_EQ(st.remote_workers, layout.nworkers);
    EXPECT_EQ(st.workers_lost, 0u);
    EXPECT_EQ(st.heartbeats_missed, 0u);
    EXPECT_EQ(st.duplicate_results, 0u);
    EXPECT_EQ(st.local_fallback_points, 0u);
    EXPECT_LE(st.max_dispatches_per_digest, 1u);
    expect_matches_baseline(
        runs, baseline,
        "fleet of " + std::to_string(layout.nworkers) + " workers, chunks=" +
            std::to_string(layout.chunks));
    rig.shutdown();
  }
}

TEST(RemoteBackend, KilledWorkerMidChunkIsInvisibleInResults) {
  const FuzzSweep s = draw_sweep(24);
  auto factory = [&s](const core::RunConfig&, std::size_t i) {
    return s.apps[i];
  };
  const auto baseline = pool1_baseline(s);

  auto opts = remote_options(fast_tuning());
  opts.chunks = 8;  // 3 points per chunk: the abort lands mid-chunk
  RemoteRig rig(std::move(opts));
  // The doomed worker fail-stops while resolving its third point — the
  // coordinator sees the same torn stream a SIGKILLed workerd produces.
  auto calls = std::make_shared<std::atomic<int>>(0);
  auto inner = table_resolver(s);
  rig.start_worker(
      [inner, calls](const core::RunConfig& cfg, const std::string& spec) {
        if (calls->fetch_add(1) == 2) throw sweep::WorkerAbort{};
        return inner(cfg, spec);
      },
      {.name = "doomed"});
  rig.start_worker(table_resolver(s), {.name = "survivor"});
  ASSERT_TRUE(rig.wait_for_workers(2));

  const auto runs = rig.service->run(s.configs, factory);
  const auto& st = rig.service->stats();
  EXPECT_EQ(st.workers_lost, 1u);
  EXPECT_EQ(st.heartbeats_missed, 0u);  // EOF death, not a silent deadline
  EXPECT_GE(st.chunks_redispatched, 1u);
  EXPECT_EQ(st.local_fallback_points, 0u);  // the survivor carried the sweep
  expect_matches_baseline(runs, baseline, "kill-a-worker-mid-chunk");
  rig.shutdown();
}

TEST(RemoteBackend, LeaseExpiryRedispatchesAndSuppressesTheLateTwin) {
  const FuzzSweep s = draw_sweep(12);
  auto factory = [&s](const core::RunConfig&, std::size_t i) {
    return s.apps[i];
  };
  const auto baseline = pool1_baseline(s);

  auto tuning = fast_tuning();
  tuning.lease_ms = 120;
  tuning.redispatch_budget = 10;  // slow-CI slack: bouncing must not error
  auto opts = remote_options(tuning);
  opts.chunks = 4;
  RemoteRig rig(std::move(opts));
  // Whichever worker resolves a point first stalls well past the lease,
  // then answers anyway; its heartbeats keep flowing the whole time
  // (stalled != dead), so this exercises lease re-dispatch in isolation.
  auto stalled = std::make_shared<std::atomic<bool>>(false);
  auto inner = table_resolver(s);
  auto stalling =
      [inner, stalled](const core::RunConfig& cfg, const std::string& spec) {
        if (!stalled->exchange(true)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(700));
        }
        return inner(cfg, spec);
      };
  rig.start_worker(stalling, {.name = "stalled"});
  rig.start_worker(stalling, {.name = "healthy"});
  ASSERT_TRUE(rig.wait_for_workers(2));

  std::unordered_map<std::uint64_t, int> streamed;
  const auto runs = rig.service->run(
      s.configs, factory,
      [&streamed](const sweep::PointOutcome& out) { ++streamed[out.digest]; });
  const auto& st = rig.service->stats();
  EXPECT_EQ(st.workers_lost, 0u);  // the stalled worker never died
  EXPECT_EQ(st.heartbeats_missed, 0u);
  EXPECT_GE(st.chunks_redispatched, 1u);
  EXPECT_EQ(st.local_fallback_points, 0u);
  // Exactly one stream delivery and one store record per digest: the late
  // twin is suppressed, never double-delivered, never double-stored.
  EXPECT_EQ(streamed.size(), st.unique_points);
  for (const auto& [digest, count] : streamed) {
    EXPECT_EQ(count, 1) << "digest " << digest << " delivered twice";
  }
  EXPECT_EQ(rig.service->store().size(), st.unique_points);
  EXPECT_LE(st.max_dispatches_per_digest, 1u);
  expect_matches_baseline(runs, baseline, "lease-expiry schedule");

  // The stalled worker's late answer may land after run() returned; the
  // lifetime counters record the suppression whenever it arrives.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (rig.service->remote_snapshot().duplicate_results == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(rig.service->remote_snapshot().duplicate_results, 1u);
  rig.shutdown();
}

TEST(RemoteBackend, SilentWorkerIsDeclaredDeadByHeartbeatDeadline) {
  const FuzzSweep s = draw_sweep(12);
  auto factory = [&s](const core::RunConfig&, std::size_t i) {
    return s.apps[i];
  };
  const auto baseline = pool1_baseline(s);

  auto tuning = fast_tuning();
  tuning.heartbeat_interval_ms = 25;
  tuning.heartbeat_deadline_ms = 250;
  auto opts = remote_options(tuning);
  opts.chunks = 4;
  RemoteRig rig(std::move(opts));
  // The silent worker never heartbeats (test hook) and hangs on its first
  // point: no frame of any kind after registration. Only the deadline
  // detector can reclaim its chunks — the socket stays open throughout.
  auto inner = table_resolver(s);
  auto hung = std::make_shared<std::atomic<bool>>(false);
  rig.start_worker(
      [inner, hung](const core::RunConfig& cfg, const std::string& spec) {
        if (!hung->exchange(true)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1500));
        }
        return inner(cfg, spec);
      },
      {.name = "silent", .max_heartbeats = 0});
  rig.start_worker(table_resolver(s), {.name = "healthy"});
  ASSERT_TRUE(rig.wait_for_workers(2));

  const auto runs = rig.service->run(s.configs, factory);
  const auto& st = rig.service->stats();
  EXPECT_EQ(st.workers_lost, 1u);
  EXPECT_EQ(st.heartbeats_missed, 1u);  // a deadline death, not an EOF
  EXPECT_GE(st.chunks_redispatched, 1u);
  EXPECT_EQ(st.local_fallback_points, 0u);
  expect_matches_baseline(runs, baseline, "heartbeat-deadline schedule");
  rig.shutdown();
}

TEST(RemoteBackend, LastWorkerDeathDegradesToLocalExecution) {
  const FuzzSweep s = draw_sweep(12);
  auto factory = [&s](const core::RunConfig&, std::size_t i) {
    return s.apps[i];
  };
  const auto baseline = pool1_baseline(s);

  auto opts = remote_options(fast_tuning());
  opts.chunks = 4;
  RemoteRig rig(std::move(opts));
  auto calls = std::make_shared<std::atomic<int>>(0);
  auto inner = table_resolver(s);
  rig.start_worker(
      [inner, calls](const core::RunConfig& cfg, const std::string& spec) {
        if (calls->fetch_add(1) == 2) throw sweep::WorkerAbort{};
        return inner(cfg, spec);
      },
      {.name = "only-worker"});
  ASSERT_TRUE(rig.wait_for_workers(1));

  // The fleet dies mid-sweep with nobody left; the sweep must complete
  // in-process, bit-identically.
  const auto runs = rig.service->run(s.configs, factory);
  const auto& st = rig.service->stats();
  EXPECT_EQ(st.workers_lost, 1u);
  EXPECT_GT(st.local_fallback_points, 0u);
  expect_matches_baseline(runs, baseline, "last-worker-death schedule");
  rig.shutdown();
}

TEST(RemoteBackend, EmptyFleetFallsBackToLocalAfterTheWindow) {
  const FuzzSweep s = draw_sweep(8);
  auto factory = [&s](const core::RunConfig&, std::size_t i) {
    return s.apps[i];
  };
  const auto baseline = pool1_baseline(s);

  auto tuning = fast_tuning();
  tuning.registration_wait_ms = 100;  // nobody is coming
  RemoteRig rig(remote_options(tuning));
  const auto runs = rig.service->run(s.configs, factory);
  const auto& st = rig.service->stats();
  EXPECT_EQ(st.remote_workers, 0u);
  EXPECT_EQ(st.workers_lost, 0u);
  EXPECT_EQ(st.local_fallback_points, st.unique_points);
  expect_matches_baseline(runs, baseline, "empty fleet");
  rig.shutdown();
}

TEST(RemoteBackend, ExhaustedRedispatchBudgetIsAHardError) {
  const FuzzSweep s = draw_sweep(4);
  auto factory = [&s](const core::RunConfig&, std::size_t i) {
    return s.apps[i];
  };

  auto tuning = fast_tuning();
  tuning.lease_ms = 50;
  tuning.redispatch_budget = 1;
  auto opts = remote_options(tuning);
  opts.chunks = 2;
  RemoteRig rig(std::move(opts));
  // Every resolve stalls past the lease on both workers: each unit burns
  // attempt 1 on one worker and attempt 2 on the other, then must surface
  // as a hard error instead of bouncing forever.
  auto inner = table_resolver(s);
  auto molasses =
      [inner](const core::RunConfig& cfg, const std::string& spec) {
        std::this_thread::sleep_for(std::chrono::milliseconds(400));
        return inner(cfg, spec);
      };
  rig.start_worker(molasses, {.name = "slow-a"});
  rig.start_worker(molasses, {.name = "slow-b"});
  ASSERT_TRUE(rig.wait_for_workers(2));

  try {
    auto runs = rig.service->run(s.configs, factory);
    FAIL() << "expected the exhausted budget to surface as a hard error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_EQ(msg.rfind("config[", 0), 0u) << msg;
    EXPECT_NE(msg.find("abandoned after"), std::string::npos) << msg;
    EXPECT_NE(msg.find("re-dispatch budget 1"), std::string::npos) << msg;
  }
  rig.shutdown();
}

TEST(RemoteBackend, VersionMismatchIsRejectedAtRegistration) {
  sweep::SweepService service(remote_options(fast_tuning()));
  try {
    sweep::run_worker(service.remote_address(), sweep::registry_resolver(),
                      {.name = "stale-binary", .protocol_version = 99});
    FAIL() << "expected the registration to be rejected";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("registration rejected"), std::string::npos) << msg;
    EXPECT_NE(msg.find("protocol version"), std::string::npos) << msg;
  }
  EXPECT_EQ(service.connected_workers(), 0u);
}

TEST(RemoteBackend, PullSchedulingKeepsFastAndSlowWorkersBusy) {
  const FuzzSweep s = draw_sweep(24);
  auto factory = [&s](const core::RunConfig&, std::size_t i) {
    return s.apps[i];
  };
  const auto baseline = pool1_baseline(s);

  auto tuning = fast_tuning();
  tuning.target_chunk_ms = 30;  // small chunks: both workers must cycle
  RemoteRig rig(remote_options(tuning));
  // A ~30 ms-per-point worker next to an unthrottled one. Under pull
  // scheduling the slow worker's EWMA keeps its chunks near 1 point while
  // the fast worker streams — but both must execute real work (a push
  // scheduler splitting the queue up front would also pass this; the
  // EWMA sizing is what keeps the tail short).
  auto fast_points = std::make_shared<std::atomic<int>>(0);
  auto slow_points = std::make_shared<std::atomic<int>>(0);
  auto inner = table_resolver(s);
  rig.start_worker(
      [inner, fast_points](const core::RunConfig& cfg, const std::string& sp) {
        fast_points->fetch_add(1);
        return inner(cfg, sp);
      },
      {.name = "fast"});
  sweep::WorkerStats slow_stats;
  rig.start_worker(
      [inner, slow_points](const core::RunConfig& cfg, const std::string& sp) {
        slow_points->fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        return inner(cfg, sp);
      },
      {.name = "slow", .stats = &slow_stats});
  ASSERT_TRUE(rig.wait_for_workers(2));

  const auto runs = rig.service->run(s.configs, factory);
  const auto& st = rig.service->stats();
  EXPECT_EQ(st.workers_lost, 0u);
  EXPECT_EQ(st.local_fallback_points, 0u);
  // Pull scheduling fed both ends of the speed spectrum.
  EXPECT_GE(fast_points->load(), 1);
  EXPECT_GE(slow_points->load(), 1);
  expect_matches_baseline(runs, baseline, "fast+slow pull schedule");
  rig.shutdown();  // joins the worker threads: slow_stats is now stable
  EXPECT_GE(slow_stats.points_executed, 1u);
  EXPECT_GE(slow_stats.dispatches, 1u);
  EXPECT_GE(slow_stats.work_requests, 1u);
  EXPECT_GT(slow_stats.ewma_ns, 0u);
}

// ---------------------------------------------------------- SO_REUSEADDR

TEST(TransportReuse, BindAfterCloseRebindsTheSamePort) {
  // A restarted coordinator must re-acquire its fixed port immediately.
  // The listener-side socket of a served connection parks in TIME_WAIT
  // when the server closes first; without SO_REUSEADDR the rebind below
  // dies to EADDRINUSE for minutes.
  sweep::ignore_sigpipe();
  std::uint16_t port = 0;
  {
    sweep::TcpListener first("127.0.0.1", 0);
    port = first.port();
    const int client = sweep::connect_tcp("127.0.0.1", port, 2000);
    const int served = first.accept_fd(2000);
    ASSERT_GE(served, 0);
    ::close(served);  // server closes first: TIME_WAIT lands on this side
    ::close(client);
    first.close();
  }
  sweep::TcpListener second("127.0.0.1", port);
  EXPECT_EQ(second.port(), port);
}

// ----------------------------------------------------------------- auth

TEST(Auth, Sha256MatchesTheFipsVector) {
  const auto d = sweep::auth::sha256("abc", 3);
  EXPECT_EQ(
      sweep::auth::to_hex(d),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  const auto empty = sweep::auth::sha256("", 0);
  EXPECT_EQ(
      sweep::auth::to_hex(empty),
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Auth, HmacMatchesTheRfc4231Vectors) {
  // RFC 4231 test case 1: key = 20 x 0x0b, data = "Hi There".
  const std::string key1(20, '\x0b');
  const auto mac1 =
      sweep::auth::hmac_sha256(key1.data(), key1.size(), "Hi There", 8);
  EXPECT_EQ(
      sweep::auth::to_hex(mac1),
      "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
  // RFC 4231 test case 2: short key ("Jefe"), longer data.
  const std::string data2 = "what do ya want for nothing?";
  const auto mac2 =
      sweep::auth::hmac_sha256("Jefe", 4, data2.data(), data2.size());
  EXPECT_EQ(
      sweep::auth::to_hex(mac2),
      "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
  // RFC 4231 test case 6: a key longer than the 64-byte HMAC block (must
  // be hashed down, not truncated).
  const std::string key6(131, '\xaa');
  const std::string data6 = "Test Using Larger Than Block-Size Key - "
                            "Hash Key First";
  const auto mac6 = sweep::auth::hmac_sha256(key6.data(), key6.size(),
                                             data6.data(), data6.size());
  EXPECT_EQ(
      sweep::auth::to_hex(mac6),
      "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Auth, ConstantTimeEqualComparesEveryByte) {
  const unsigned char a[4] = {1, 2, 3, 4};
  unsigned char b[4] = {1, 2, 3, 4};
  EXPECT_TRUE(sweep::auth::constant_time_equal(a, b, sizeof a));
  for (std::size_t i = 0; i < sizeof a; ++i) {
    b[i] ^= 0x80;
    EXPECT_FALSE(sweep::auth::constant_time_equal(a, b, sizeof a))
        << "difference at byte " << i << " not detected";
    b[i] ^= 0x80;
  }
  EXPECT_TRUE(sweep::auth::constant_time_equal(a, b, 0));  // empty = equal
}

TEST(Auth, NoncesAreFresh) {
  const auto a = sweep::auth::make_nonce();
  const auto b = sweep::auth::make_nonce();
  EXPECT_NE(a, b);
}

TEST(Auth, SecretFileStripsOneTrailingNewlineAndRejectsEmpty) {
  StoreFile f("secret");
  auto write_file = [&f](const std::string& contents) {
    std::FILE* file = std::fopen(f.path().c_str(), "wb");
    ASSERT_NE(file, nullptr);
    std::fwrite(contents.data(), 1, contents.size(), file);
    std::fclose(file);
  };
  write_file("hunter2\n");  // echo-created file
  EXPECT_EQ(sweep::auth::load_secret_file(f.path()), "hunter2");
  write_file("hunter2\r\n");
  EXPECT_EQ(sweep::auth::load_secret_file(f.path()), "hunter2");
  write_file("no newline");
  EXPECT_EQ(sweep::auth::load_secret_file(f.path()), "no newline");
  write_file("\n");  // empty after stripping: a silent no-auth foot-gun
  EXPECT_THROW({ auto x = sweep::auth::load_secret_file(f.path()); },
               std::runtime_error);
  EXPECT_THROW(
      { auto x = sweep::auth::load_secret_file(f.path() + ".missing"); },
      std::runtime_error);
}

TEST(Auth, WrongSecretIsRejectedWithAReason) {
  auto opts = remote_options(fast_tuning());
  opts.secret = "correct horse battery staple";
  sweep::SweepService service(std::move(opts));
  try {
    sweep::run_worker(service.remote_address(), sweep::registry_resolver(),
                      {.name = "impostor", .secret = "incorrect horse"});
    FAIL() << "expected the registration to be rejected";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("registration rejected"), std::string::npos) << msg;
    EXPECT_NE(msg.find("authentication failed"), std::string::npos) << msg;
    EXPECT_NE(msg.find("bad shared-secret MAC"), std::string::npos) << msg;
  }
  EXPECT_EQ(service.connected_workers(), 0u);
}

TEST(Auth, MissingSecretIsRefusedBeforeAnyConfigBytes) {
  auto opts = remote_options(fast_tuning());
  opts.secret = "correct horse battery staple";
  sweep::SweepService service(std::move(opts));
  try {
    sweep::run_worker(service.remote_address(), sweep::registry_resolver(),
                      {.name = "unprovisioned"});
    FAIL() << "expected the worker to refuse the challenge";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("requires authentication"),
              std::string::npos)
        << e.what();
  }
  EXPECT_EQ(service.connected_workers(), 0u);
}

TEST(Auth, WorkerWithSecretRefusesAnUnauthenticatedCoordinator) {
  // No secret on the coordinator: it never challenges. A worker that was
  // provisioned with one must not silently serve it.
  sweep::SweepService service(remote_options(fast_tuning()));
  try {
    sweep::run_worker(service.remote_address(), sweep::registry_resolver(),
                      {.name = "cautious", .secret = "provisioned"});
    FAIL() << "expected the worker to refuse the unauthenticated coordinator";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("did not request authentication"),
              std::string::npos)
        << e.what();
  }
  // The coordinator side of this handshake is legitimate — it registers
  // the worker before the worker's verdict arrives. The refusal shows up
  // as an immediate hangup: the fleet must be empty again shortly.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (service.connected_workers() != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(service.connected_workers(), 0u);
}

TEST(Auth, AuthenticatedFleetReproducesThePoolBaseline) {
  const FuzzSweep s = draw_sweep(16);
  auto factory = [&s](const core::RunConfig&, std::size_t i) {
    return s.apps[i];
  };
  const auto baseline = pool1_baseline(s);

  auto opts = remote_options(fast_tuning());
  opts.secret = "fleet-secret";
  RemoteRig rig(std::move(opts));
  rig.start_worker(table_resolver(s),
                   {.name = "auth-a", .secret = "fleet-secret"});
  rig.start_worker(table_resolver(s),
                   {.name = "auth-b", .secret = "fleet-secret"});
  ASSERT_TRUE(rig.wait_for_workers(2));

  const auto runs = rig.service->run(s.configs, factory);
  const auto& st = rig.service->stats();
  EXPECT_EQ(st.remote_workers, 2u);
  EXPECT_EQ(st.workers_lost, 0u);
  EXPECT_EQ(st.local_fallback_points, 0u);
  expect_matches_baseline(runs, baseline, "authenticated fleet");
  rig.shutdown();
}

// ------------------------------------------------------- handshake fuzz

/// The 13-byte frame header exactly as the wire carries it.
std::vector<unsigned char> raw_header(std::uint8_t kind, std::uint64_t id,
                                      std::uint32_t len) {
  std::vector<unsigned char> h(13);
  h[0] = kind;
  for (int i = 0; i < 8; ++i) {
    h[1 + i] = static_cast<unsigned char>(id >> (8 * i));
  }
  for (int i = 0; i < 4; ++i) {
    h[9 + i] = static_cast<unsigned char>(len >> (8 * i));
  }
  return h;
}

/// A byte-exact valid Hello frame (header + payload), the fuzz baseline.
std::vector<unsigned char> hello_image(const std::string& name = "fuzz") {
  sweep::ByteWriter w;
  w.u32(sweep::kRemoteProtocolVersion);
  w.u8(sweep::kConfigKeyVersion);
  w.u32(sweep::kResultCodecVersion);
  w.str(name);
  const auto payload = w.take();
  auto image = raw_header(sweep::kFrameHello, 0,
                          static_cast<std::uint32_t>(payload.size()));
  for (const std::byte b : payload) {
    image.push_back(std::to_integer<unsigned char>(b));
  }
  return image;
}

struct AttackReply {
  bool rejected = false;  ///< coordinator answered with a HelloReject
  std::string reason;
};

/// Connects, sends `bytes` verbatim, half-closes, and reports how the
/// coordinator answered. Must always return: every malformed prefix has
/// to end in a reject or a close, never a hang.
AttackReply attack(const std::string& address,
                   const std::vector<unsigned char>& bytes) {
  const sweep::Endpoint ep = sweep::parse_endpoint(address);
  const int fd = sweep::connect_tcp(ep.host.empty() ? "127.0.0.1" : ep.host,
                                    ep.port, 5000);
  sweep::frame::write_all(fd, bytes.data(), bytes.size());
  ::shutdown(fd, SHUT_WR);  // we are done talking; the verdict follows
  AttackReply out;
  sweep::frame::FrameHeader h;
  if (sweep::frame::read_frame_header(fd, h) &&
      h.kind == sweep::kFrameHelloReject && h.len <= 4096) {
    out.reason.resize(h.len);
    out.rejected =
        sweep::frame::read_all(fd, out.reason.data(), out.reason.size());
  }
  ::close(fd);
  return out;
}

TEST(HandshakeFuzz, MalformedHellosNeverKillTheCoordinator) {
  const FuzzSweep s = draw_sweep(8);
  auto factory = [&s](const core::RunConfig&, std::size_t i) {
    return s.apps[i];
  };
  const auto baseline = pool1_baseline(s);

  // Some bit flips below still form a valid Hello, registering a phantom
  // worker we immediately hang up on; the grace window keeps an unlucky
  // phantom-death-just-before-run from tripping local fallback before the
  // real worker registers.
  auto tuning = fast_tuning();
  tuning.fleet_death_grace_ms = 4000;
  RemoteRig rig(remote_options(tuning));
  const std::string addr = rig.service->remote_address();
  const auto good = hello_image();

  // Truncations: every proper prefix of a valid Hello (torn header, torn
  // payload, empty connection).
  for (std::size_t cut = 0; cut < good.size(); cut += 3) {
    const std::vector<unsigned char> torn(good.begin(),
                                          good.begin() +
                                              static_cast<std::ptrdiff_t>(cut));
    attack(addr, torn);
  }
  // Hostile length claim: a header announcing a ~4 GiB Hello. The
  // coordinator must drop it by the control-payload cap, not allocate.
  attack(addr, raw_header(sweep::kFrameHello, 0, 0xffffffffu));
  // Out-of-protocol openers: a result frame, an AuthResponse before any
  // challenge, an unknown kind.
  attack(addr, raw_header(sweep::frame::kFrameResult, 7, 0));
  attack(addr, raw_header(sweep::kFrameAuthResponse, 0, 0));
  attack(addr, raw_header(0x63, 0, 0));
  // A payload one byte short of its length claim parses as a torn str.
  {
    auto malformed = good;
    malformed.pop_back();
    const std::uint32_t len =
        static_cast<std::uint32_t>(malformed.size() - 13);
    for (int i = 0; i < 4; ++i) {
      malformed[9 + i] = static_cast<unsigned char>(len >> (8 * i));
    }
    const AttackReply r = attack(addr, malformed);
    EXPECT_TRUE(r.rejected);
    EXPECT_NE(r.reason.find("malformed hello"), std::string::npos)
        << r.reason;
  }
  // Bit flips across the whole image. Some flips still form a valid
  // Hello (id bytes, name bytes) — the point is that no flip hangs or
  // kills the coordinator, whatever the verdict.
  for (std::size_t i = 0; i < good.size(); ++i) {
    auto flipped = good;
    flipped[i] ^= 0x80;
    attack(addr, flipped);
  }

  // The coordinator survived all of it: a real worker registers and the
  // sweep still reproduces the baseline without local fallback.
  rig.start_worker(table_resolver(s), {.name = "survivor"});
  ASSERT_TRUE(rig.wait_for_workers(1));
  const auto runs = rig.service->run(s.configs, factory);
  EXPECT_EQ(rig.service->stats().local_fallback_points, 0u);
  expect_matches_baseline(runs, baseline, "post-fuzz sweep");
  rig.shutdown();
}

TEST(HandshakeFuzz, WorkerRejectsAnOversizedRegistrationReply) {
  // A hostile coordinator claiming a ~4 GiB HelloAck must be refused by
  // length — the worker must not try to allocate it.
  sweep::ignore_sigpipe();
  sweep::TcpListener evil("127.0.0.1", 0);
  std::thread coordinator([&evil] {
    const int fd = evil.accept_fd(5000);
    if (fd < 0) return;
    sweep::frame::FrameHeader h;
    if (sweep::frame::read_frame_header(fd, h) && h.len <= 4096) {
      std::vector<std::byte> hello(h.len);
      if (h.len > 0) sweep::frame::read_all(fd, hello.data(), h.len);
    }
    const auto hdr = raw_header(sweep::kFrameHelloAck, 0, 0xffffffffu);
    sweep::frame::write_all(fd, hdr.data(), hdr.size());
    ::close(fd);
  });
  try {
    sweep::run_worker(evil.address(), sweep::registry_resolver(),
                      {.name = "victim", .connect_timeout_ms = 5000});
    FAIL() << "expected the worker to refuse the oversized reply";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("oversized registration frame"),
              std::string::npos)
        << e.what();
  }
  coordinator.join();
}

TEST(HandshakeFuzz, WorkerThrowsOnAGarbageRegistrationReply) {
  sweep::ignore_sigpipe();
  sweep::TcpListener evil("127.0.0.1", 0);
  std::thread coordinator([&evil] {
    const int fd = evil.accept_fd(5000);
    if (fd < 0) return;
    sweep::frame::FrameHeader h;
    if (sweep::frame::read_frame_header(fd, h) && h.len <= 4096) {
      std::vector<std::byte> hello(h.len);
      if (h.len > 0) sweep::frame::read_all(fd, hello.data(), h.len);
    }
    const unsigned char junk[4] = {0xde, 0xad, 0xbe, 0xef};
    const auto hdr = raw_header(0x63, 0, sizeof junk);
    sweep::frame::write_all(fd, hdr.data(), hdr.size());
    sweep::frame::write_all(fd, junk, sizeof junk);
    ::close(fd);
  });
  try {
    sweep::run_worker(evil.address(), sweep::registry_resolver(),
                      {.name = "victim", .connect_timeout_ms = 5000});
    FAIL() << "expected the worker to refuse the garbage reply";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("unexpected registration frame"),
              std::string::npos)
        << e.what();
  }
  coordinator.join();
}

// ------------------------------------------------------------ supervisor

TEST(Supervisor, RestartPolicyByExitCode) {
  EXPECT_FALSE(sweep::exit_is_restartable(0));    // clean stop
  EXPECT_FALSE(sweep::exit_is_restartable(2));    // usage: re-exec can't fix
  EXPECT_TRUE(sweep::exit_is_restartable(1));
  EXPECT_TRUE(sweep::exit_is_restartable(128 + SIGKILL));
  EXPECT_TRUE(sweep::exit_is_restartable(128 + SIGSEGV));
}

TEST(Supervisor, CleanChildExitEndsSupervisionWithoutRestart) {
  std::vector<int> attempts;
  sweep::SuperviseOptions o;
  o.restart_budget = 5;
  o.backoff_base_ms = 1;
  o.backoff_cap_ms = 2;
  o.on_spawn = [&attempts](pid_t pid, int attempt) {
    EXPECT_GT(pid, 0);
    attempts.push_back(attempt);
  };
  const auto out = sweep::supervise_call([] { return 0; }, o);
  EXPECT_EQ(out.exit_code, 0);
  EXPECT_EQ(out.launches, 1);
  EXPECT_FALSE(out.budget_spent);
  ASSERT_EQ(attempts.size(), 1u);
  EXPECT_EQ(attempts[0], 1);
}

TEST(Supervisor, SignalDeathIsRestartedUntilTheBudgetIsSpent) {
  sweep::SuperviseOptions o;
  o.restart_budget = 3;
  o.backoff_base_ms = 1;
  o.backoff_cap_ms = 2;
  const auto out = sweep::supervise_call(
      [] {
        ::kill(::getpid(), SIGKILL);
        return 0;  // unreachable
      },
      o);
  EXPECT_EQ(out.exit_code, 128 + SIGKILL);
  EXPECT_EQ(out.launches, 4);  // 1 launch + 3 restarts
  EXPECT_TRUE(out.budget_spent);
}

TEST(Supervisor, UsageErrorsAreNeverRestarted) {
  sweep::SuperviseOptions o;
  o.restart_budget = 5;
  o.backoff_base_ms = 1;
  o.backoff_cap_ms = 2;
  const auto out = sweep::supervise_call([] { return 2; }, o);
  EXPECT_EQ(out.exit_code, 2);
  EXPECT_EQ(out.launches, 1);
  EXPECT_FALSE(out.budget_spent);
}

TEST(Supervisor, SigkilledWorkerIsReplacedAndTheSweepCompletes) {
  const FuzzSweep s = draw_sweep(16);
  auto factory = [&s](const core::RunConfig&, std::size_t i) {
    return s.apps[i];
  };
  const auto baseline = pool1_baseline(s);

  auto tuning = fast_tuning();
  // Replacement window: the supervised worker's re-exec must beat the
  // local-fallback degradation, not race it.
  tuning.fleet_death_grace_ms = 8000;
  auto opts = remote_options(tuning);
  auto service = std::make_unique<sweep::SweepService>(std::move(opts));
  const std::string addr = service->remote_address();

  // Marker file: only the first child SIGKILLs itself mid-chunk; its
  // replacement (a fresh fork) finds the marker and behaves. Fork-copied
  // memory cannot carry this flag — only the filesystem spans processes.
  StoreFile marker("supervisor_kill_marker");
  sweep::SuperviseOutcome outcome;
  std::thread supervisor([&] {
    sweep::SuperviseOptions so;
    so.restart_budget = 5;
    so.backoff_base_ms = 10;
    so.backoff_cap_ms = 50;
    outcome = sweep::supervise_call(
        [&] {
          auto inner = table_resolver(s);
          int resolved = 0;
          try {
            sweep::run_worker(
                addr,
                [&](const core::RunConfig& cfg, const std::string& sp) {
                  if (++resolved == 3 &&
                      !std::filesystem::exists(marker.path())) {
                    if (std::FILE* f =
                            std::fopen(marker.path().c_str(), "wb")) {
                      std::fclose(f);
                    }
                    ::kill(::getpid(), SIGKILL);  // fail-stop, mid-chunk
                  }
                  return inner(cfg, sp);
                },
                {.name = "supervised"});
          } catch (...) {
            return 1;
          }
          return 0;
        },
        so);
  });

  // One live worker before the sweep starts...
  const auto reg_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (service->connected_workers() < 1 &&
         std::chrono::steady_clock::now() < reg_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(service->connected_workers(), 1u);

  const auto runs = service->run(s.configs, factory);
  // ...and one live worker after it: the kill test ends with the fleet
  // size it started with, because the supervisor put the replica back.
  EXPECT_EQ(service->connected_workers(), 1u);
  const auto& st = service->stats();
  EXPECT_GE(st.workers_lost, 1u);
  EXPECT_GE(st.chunks_redispatched, 1u);
  EXPECT_EQ(st.local_fallback_points, 0u);  // the replacement did the work
  expect_matches_baseline(runs, baseline, "supervised-SIGKILL schedule");

  service.reset();  // Shutdown frame: the replacement child exits 0
  supervisor.join();
  EXPECT_EQ(outcome.exit_code, 0);
  EXPECT_GE(outcome.launches, 2);  // the original + at least the replacement
  EXPECT_FALSE(outcome.budget_spent);
}

TEST(Supervisor, SpentRestartBudgetDegradesToLocalFallback) {
  const FuzzSweep s = draw_sweep(8);
  auto factory = [&s](const core::RunConfig&, std::size_t i) {
    return s.apps[i];
  };
  const auto baseline = pool1_baseline(s);

  auto tuning = fast_tuning();
  tuning.fleet_death_grace_ms = 1000;  // longer than the supervisor backoff
  tuning.redispatch_budget = 10;       // deaths must not exhaust the chunks
  auto opts = remote_options(tuning);
  auto service = std::make_unique<sweep::SweepService>(std::move(opts));
  const std::string addr = service->remote_address();

  // Every child dies on its first resolve: the supervisor burns its whole
  // budget mid-sweep, the fleet stays dead past the grace window, and the
  // sweep must complete locally — degraded, never failed. Dispatches only
  // flow while run() is active, so the sweep and the supervisor must run
  // concurrently (and the deltas the service reports only cover deaths
  // that happen inside the run).
  sweep::SuperviseOutcome outcome;
  std::thread supervisor([&] {
    sweep::SuperviseOptions so;
    so.restart_budget = 2;
    so.backoff_base_ms = 5;
    so.backoff_cap_ms = 20;
    outcome = sweep::supervise_call(
        [&] {
          try {
            sweep::run_worker(
                addr,
                [](const core::RunConfig&,
                   const std::string&) -> core::AppFn {
                  ::kill(::getpid(), SIGKILL);  // die on the first dispatch
                  throw std::runtime_error("unreachable");
                },
                {.name = "doomed"});
          } catch (...) {
            return 1;
          }
          return 0;
        },
        so);
  });

  // First doomed worker is live before the sweep starts.
  const auto reg_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (service->connected_workers() < 1 &&
         std::chrono::steady_clock::now() < reg_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(service->connected_workers(), 1u);

  const auto runs = service->run(s.configs, factory);
  supervisor.join();  // budget spent: three launches, three corpses

  const auto& st = service->stats();
  EXPECT_EQ(st.remote_workers, 1u);  // fleet size when the sweep started
  EXPECT_EQ(st.workers_lost, 3u);    // every launch died holding a lease
  EXPECT_EQ(st.local_fallback_points, st.unique_points);
  expect_matches_baseline(runs, baseline, "spent-budget schedule");
  EXPECT_EQ(outcome.exit_code, 128 + SIGKILL);
  EXPECT_EQ(outcome.launches, 3);
  EXPECT_TRUE(outcome.budget_spent);
  service.reset();
}

// ----------------------------------------------------- fault summary line

TEST(ServiceStats, FaultSummaryIsDeterministicAndOmitsZeroCounters) {
  sweep::ServiceStats st;
  EXPECT_EQ(sweep::format_fault_summary(st), "faults: none");
  st.workers_lost = 2;
  st.chunks_redispatched = 3;
  EXPECT_EQ(sweep::format_fault_summary(st),
            "faults: workers_lost=2 chunks_redispatched=3");
  st.heartbeats_missed = 1;
  st.duplicate_results = 4;
  st.local_fallback_points = 5;
  EXPECT_EQ(sweep::format_fault_summary(st),
            "faults: workers_lost=2 heartbeats_missed=1 "
            "chunks_redispatched=3 duplicate_results=4 "
            "local_fallback_points=5");
  // Fleet size is not a fault: a clean remote sweep still reads "none".
  sweep::ServiceStats clean;
  clean.remote_workers = 3;
  EXPECT_EQ(sweep::format_fault_summary(clean), "faults: none");
}

}  // namespace
}  // namespace sdrmpi
