// Randomized cross-protocol determinism fuzzer.
//
// Draws ~200 configurations from (protocol × replication × topology ×
// fault/SDC schedule × seed) with util::Rng, pairs each with a small
// synthetic app (ring / wildcard funnel / allreduce chain, message sizes
// straddling the eager threshold), and runs the whole batch twice through
// core::run_many with pool sizes 1 and 8. Every run must be bit-identical
// between the two executions: final virtual times, per-slot outcomes,
// traffic totals, ProtocolStats and FabricStats. This is the systematic
// version of the hand-picked determinism_test scenarios, and the guard that
// keeps the fat-tree contention backend inside the simulator's
// reproducibility contract.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "sdrmpi/util/rng.hpp"
#include "test_support.hpp"

namespace sdrmpi {
namespace {

constexpr int kConfigs = 200;

struct FuzzCase {
  core::RunConfig cfg;
  core::AppFn app;
  std::string label;
};

// ---- synthetic apps (deterministic given their captured parameters) --------

core::AppFn ring_app(int iters, int doubles_per_msg) {
  return [iters, doubles_per_msg](mpi::Env& env) {
    auto& w = env.world();
    const int n = w.size();
    const int next = (env.rank() + 1) % n;
    const int prev = (env.rank() + n - 1) % n;
    std::vector<double> out(static_cast<std::size_t>(doubles_per_msg));
    double acc = env.rank() + 1.0;
    for (int it = 0; it < iters; ++it) {
      for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = acc + static_cast<double>(i);
      }
      auto sreq = w.isend(std::span<const double>(out), next, 7);
      std::vector<double> in(out.size());
      w.recv(std::span<double>(in), prev, 7);
      w.wait(sreq);
      acc += in[in.size() / 2];
    }
    util::Checksum cs;
    cs.add_double(acc);
    env.report_checksum(cs.digest());
  };
}

core::AppFn funnel_app(int msgs_per_sender) {
  return [msgs_per_sender](mpi::Env& env) {
    auto& w = env.world();
    const int n = w.size();
    if (env.rank() == 0) {
      double acc = 0.0;
      for (int i = 0; i < (n - 1) * msgs_per_sender; ++i) {
        acc += w.recv_value<double>(mpi::kAnySource, 3);
      }
      for (int d = 1; d < n; ++d) w.send_value(acc, d, 4);
      util::Checksum cs;
      cs.add_double(acc);
      env.report_checksum(cs.digest());
    } else {
      for (int i = 0; i < msgs_per_sender; ++i) {
        w.send_value(env.rank() * 1.25 + i, 0, 3);
      }
      util::Checksum cs;
      cs.add_double(w.recv_value<double>(0, 4));
      env.report_checksum(cs.digest());
    }
  };
}

core::AppFn allreduce_app(int iters) {
  return [iters](mpi::Env& env) {
    auto& w = env.world();
    double x = env.rank() + 0.5;
    for (int it = 0; it < iters; ++it) {
      x = w.allreduce_value(x, mpi::Op::Sum) / w.size();
      if (w.size() > 1) {
        const int peer = (env.rank() + it) % w.size() == env.rank()
                             ? (env.rank() + 1) % w.size()
                             : (env.rank() + it) % w.size();
        const double payload = x;
        auto sreq = w.isend(std::span<const double>(&payload, 1), peer, 9);
        x += w.recv_value<double>(mpi::kAnySource, 9);
        w.wait(sreq);
      }
    }
    util::Checksum cs;
    cs.add_double(x);
    env.report_checksum(cs.digest());
  };
}

// ---- config generator -------------------------------------------------------

mpi::CollTuning draw_coll_tuning(util::Rng& rng) {
  mpi::CollTuning t;
  t.bcast = static_cast<mpi::BcastAlg>(rng.below(3));
  t.allreduce = static_cast<mpi::AllreduceAlg>(rng.below(4));
  t.allgather = static_cast<mpi::AllgatherAlg>(rng.below(3));
  t.alltoall = static_cast<mpi::AlltoallAlg>(rng.below(3));
  if (rng.below(3) == 0) {
    // Occasionally move the Auto thresholds so size-based selection flips.
    t.bcast_long_bytes = 1u << (6 + rng.below(10));
    t.allreduce_long_bytes = 1u << (4 + rng.below(10));
    t.allgather_bruck_bytes = 1u << (4 + rng.below(10));
    t.alltoall_bruck_bytes = 1u << (4 + rng.below(10));
  }
  return t;
}

net::TopologySpec draw_topology(util::Rng& rng) {
  switch (rng.below(4)) {
    case 0: return net::TopologySpec::flat();
    case 1: return net::TopologySpec::degenerate_fat_tree();
    default: {
      auto t = net::TopologySpec::fat_tree(
          /*ranks_per_node=*/static_cast<int>(1 + rng.below(3)),
          /*nodes_per_switch=*/static_cast<int>(1 + rng.below(3)),
          /*oversubscription=*/static_cast<double>(1 + rng.below(4)));
      if (rng.below(2) == 0) {
        t.placement = net::PlacementPolicy::PackRanks;
      }
      return t;
    }
  }
}

std::vector<FuzzCase> draw_cases() {
  util::Rng rng(0xfabf00dULL);
  const core::ProtocolKind kinds[] = {
      core::ProtocolKind::Native,       core::ProtocolKind::Sdr,
      core::ProtocolKind::Mirror,       core::ProtocolKind::Leader,
      core::ProtocolKind::RedMpiLeader, core::ProtocolKind::RedMpiSd};

  std::vector<FuzzCase> cases;
  cases.reserve(kConfigs);
  for (int i = 0; i < kConfigs; ++i) {
    FuzzCase fc;
    core::RunConfig& cfg = fc.cfg;
    const auto proto = kinds[rng.below(6)];
    cfg.protocol = proto;
    cfg.replication = proto == core::ProtocolKind::Native ? 1 : 2;
    // Mostly tiny worlds (fast, dense interleavings); one in eight jumps
    // to 16..32 ranks so the sparse per-peer seq maps, deviation-only
    // replica maps, and the runnable heap see real fan-out under random
    // traffic instead of the 2..4-rank corner.
    cfg.nranks = rng.below(8) == 0 ? static_cast<int>(16 + rng.below(17))
                                   : static_cast<int>(2 + rng.below(3));
    cfg.net = rng.below(8) == 0 ? net::NetParams::gigabit_ethernet()
                                : net::NetParams::infiniband_20g();
    cfg.net.topology = draw_topology(rng);
    cfg.coll = draw_coll_tuning(rng);
    cfg.seed = rng();
    cfg.time_limit = timeunits::seconds(30.0);

    // Fail-stop faults where the seed suite exercises them (SDR failover,
    // mirror protocol), occasionally with auto-recovery; SDC injection for
    // the redMPI detectors.
    if (cfg.replication == 2 && (proto == core::ProtocolKind::Sdr ||
                                 proto == core::ProtocolKind::Mirror) &&
        rng.below(3) == 0) {
      const int slot = cfg.nranks + static_cast<int>(rng.below(cfg.nranks));
      cfg.faults.push_back({.slot = slot,
                            .at_time = -1,
                            .at_send = static_cast<std::int64_t>(
                                1 + rng.below(6))});
      if (proto == core::ProtocolKind::Sdr && rng.below(2) == 0) {
        cfg.auto_recover = true;
      }
    }
    if ((proto == core::ProtocolKind::RedMpiLeader ||
         proto == core::ProtocolKind::RedMpiSd) &&
        rng.below(4) == 0) {
      cfg.sdc.push_back(
          {.slot = static_cast<int>(rng.below(2 * cfg.nranks)),
           .at_send = static_cast<std::int64_t>(rng.below(4))});
    }

    switch (rng.below(3)) {
      case 0: {
        // Message sizes straddle the eager/rendezvous threshold.
        const int doubles = static_cast<int>(1 + rng.below(2048));
        fc.app = ring_app(static_cast<int>(2 + rng.below(5)), doubles);
        fc.label = "ring";
        break;
      }
      case 1:
        fc.app = funnel_app(static_cast<int>(3 + rng.below(10)));
        fc.label = "funnel";
        break;
      default:
        fc.app = allreduce_app(static_cast<int>(2 + rng.below(5)));
        fc.label = "allreduce";
        break;
    }
    fc.label += "/" + std::string(core::to_string(proto)) + "/" +
                net::to_string(cfg.net.topology.kind) + "/i" +
                std::to_string(i);
    cases.push_back(std::move(fc));
  }
  return cases;
}

void expect_identical(const core::RunResult& a, const core::RunResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.deadlock, b.deadlock) << label;
  EXPECT_EQ(a.time_limit_hit, b.time_limit_hit) << label;
  EXPECT_EQ(a.rank_lost, b.rank_lost) << label;
  EXPECT_EQ(a.makespan, b.makespan) << label;
  EXPECT_EQ(a.app_sends, b.app_sends) << label;
  EXPECT_EQ(a.data_frames, b.data_frames) << label;
  EXPECT_EQ(a.ctl_frames, b.ctl_frames) << label;
  EXPECT_EQ(a.unexpected, b.unexpected) << label;
  EXPECT_EQ(a.duplicates_dropped, b.duplicates_dropped) << label;
  EXPECT_EQ(a.events_executed, b.events_executed) << label;
  EXPECT_EQ(a.context_switches, b.context_switches) << label;
  EXPECT_EQ(a.protocol, b.protocol) << label;
  EXPECT_EQ(a.fabric, b.fabric) << label;
  ASSERT_EQ(a.slots.size(), b.slots.size()) << label;
  for (std::size_t i = 0; i < a.slots.size(); ++i) {
    EXPECT_EQ(a.slots[i].finish_time, b.slots[i].finish_time)
        << label << " slot " << i;
    EXPECT_EQ(a.slots[i].checksum, b.slots[i].checksum)
        << label << " slot " << i;
    EXPECT_EQ(a.slots[i].final_state, b.slots[i].final_state)
        << label << " slot " << i;
  }
}

TEST(FuzzDeterminism, PoolSizeNeverLeaksIntoResults) {
  const auto cases = draw_cases();
  std::vector<core::RunConfig> configs;
  configs.reserve(cases.size());
  for (const auto& c : cases) configs.push_back(c.cfg);
  auto factory = [&cases](const core::RunConfig&, std::size_t i) {
    return cases[i].app;
  };

  const auto serial = core::run_many(configs, factory, {.threads = 1});
  const auto pooled = core::run_many(configs, factory, {.threads = 8});
  ASSERT_EQ(serial.size(), pooled.size());

  int clean = 0;
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_identical(serial[i], pooled[i], cases[i].label);
    // Host byte counters are per-run deltas off a run-scoped digest memo,
    // so they must not leak pool size either. (Not part of
    // expect_identical: the symbolic/materialized twin test uses that
    // helper, and twins differ in bytes_copied by design.)
    EXPECT_EQ(serial[i].bytes_copied, pooled[i].bytes_copied)
        << cases[i].label;
    EXPECT_EQ(serial[i].bytes_hashed, pooled[i].bytes_hashed)
        << cases[i].label;
    if (serial[i].clean()) ++clean;
  }
  // The fuzzer must mostly generate runnable configs, or it tests nothing.
  EXPECT_GE(clean, static_cast<int>(serial.size()) * 9 / 10)
      << "only " << clean << "/" << serial.size() << " runs were clean";
}

// Symbolic payloads are timing-transparent: a workload sending content
// descriptors with sink receives must produce a bit-identical trace —
// virtual times, wire bytes, traffic counters, per-slot checksums — to its
// materialized twin pushing the same pattern bytes through real buffers.
// Randomizes (workload × protocol × topology × seed) pairs.
TEST(FuzzDeterminism, SymbolicMatchesMaterializedTwin) {
  constexpr int kPairs = 36;
  util::Rng rng(0x5fabc0deULL);
  const core::ProtocolKind kinds[] = {
      core::ProtocolKind::Native,       core::ProtocolKind::Sdr,
      core::ProtocolKind::Mirror,       core::ProtocolKind::Leader,
      core::ProtocolKind::RedMpiLeader, core::ProtocolKind::RedMpiSd};
  const char* skeletons[] = {"cg", "mg", "ft", "bt", "sp", "hpccg", "cm1"};

  std::vector<core::RunConfig> configs;
  std::vector<core::AppFn> apps;
  std::vector<std::string> labels;
  for (int i = 0; i < kPairs; ++i) {
    core::RunConfig cfg;
    const auto proto = kinds[rng.below(6)];
    cfg.protocol = proto;
    cfg.replication = proto == core::ProtocolKind::Native ? 1 : 2;
    cfg.nranks = static_cast<int>(2 + rng.below(4));  // 2..5, incl. non-pow2
    cfg.net.topology = draw_topology(rng);
    cfg.coll = draw_coll_tuning(rng);
    cfg.seed = rng();
    cfg.time_limit = timeunits::seconds(300.0);

    util::Options opts;
    std::string wl_name;
    switch (rng.below(5)) {
      case 0:
        wl_name = "netpipe";
        opts.set("sizes", "1,512,4096,65536");
        opts.set("reps", "3");
        break;
      case 1:
        // Pure collective traffic: every schedule of the engine, sizes
        // straddling both the eager threshold and the Auto thresholds.
        wl_name = "coll";
        opts.set("bcast-bytes", std::to_string(64u << rng.below(11)));
        opts.set("block-bytes", std::to_string(16u << rng.below(10)));
        opts.set("reduce-bytes", std::to_string(8u << rng.below(12)));
        opts.set("iters", "2");
        break;
      default:
        wl_name = skeletons[rng.below(7)];
        opts.set("class", rng.below(2) == 0 ? "S" : "W");
        opts.set("iters", "2");
        break;
    }
    opts.set("seed", std::to_string(rng.below(1u << 20)));
    for (const char* mode : {"symbolic", "materialize"}) {
      util::Options mode_opts = opts;
      mode_opts.set(mode, "true");
      configs.push_back(cfg);
      apps.push_back(wl::make_workload(wl_name, mode_opts));
    }
    labels.push_back(wl_name + "/" + core::to_string(proto) + "/i" +
                     std::to_string(i));
  }

  auto factory = [&apps](const core::RunConfig&, std::size_t i) {
    return apps[i];
  };
  const auto runs = core::run_many(configs, factory, {.threads = 4});
  ASSERT_EQ(runs.size(), static_cast<std::size_t>(2 * kPairs));
  for (int i = 0; i < kPairs; ++i) {
    expect_identical(runs[2 * static_cast<std::size_t>(i)],
                     runs[2 * static_cast<std::size_t>(i) + 1],
                     labels[static_cast<std::size_t>(i)]);
  }
}

// Checkpoint/restart axis: random intervals, costs and fault schedules,
// each config paired with a verify_snapshots twin. Two contracts at once:
// pool size never leaks into results (threads 1 vs 8), and the twin — which
// snapshots and immediately restores the full engine + endpoint state at
// every checkpoint boundary — is bit-identical to its plain partner, so
// Engine::snapshot/restore is a provable no-op across the random grid.
TEST(FuzzDeterminism, CheckpointSnapshotRestoreIsInvisible) {
  constexpr int kPairs = 30;
  util::Rng rng(0xc0ffee5eedULL);

  std::vector<core::RunConfig> configs;
  std::vector<core::AppFn> apps;
  std::vector<std::string> labels;
  for (int i = 0; i < kPairs; ++i) {
    core::RunConfig cfg;
    cfg.protocol = core::ProtocolKind::Ckpt;
    cfg.replication = 1;
    cfg.nranks = static_cast<int>(2 + rng.below(3));  // 2..4
    cfg.net.topology = draw_topology(rng);
    cfg.coll = draw_coll_tuning(rng);
    cfg.seed = rng();
    cfg.time_limit = timeunits::seconds(30.0);
    // Log-uniform interval from 16us to ~2ms straddles the ~400us small-cg
    // makespan: some runs checkpoint dozens of times, some never reach the
    // first boundary. Occasionally 0 (boundary chain disabled entirely).
    cfg.ckpt.interval =
        rng.below(8) == 0
            ? 0
            : static_cast<Time>(16000ULL << rng.below(8));
    cfg.ckpt.checkpoint_cost = static_cast<Time>(500 + rng.below(8000));
    cfg.ckpt.restart_cost = static_cast<Time>(5000 + rng.below(50000));
    // At_time-only faults (the Ckpt validator's rule), some landing beyond
    // the run's completion where they must be absorbed as no-ops.
    const auto nfaults = rng.below(3);
    for (std::uint32_t f = 0; f < nfaults; ++f) {
      cfg.faults.push_back(
          {.slot = static_cast<int>(rng.below(cfg.nranks)),
           .at_time = static_cast<Time>(20000 + rng.below(1500000)),
           .at_send = -1});
    }

    core::AppFn app;
    std::string label;
    switch (rng.below(3)) {
      case 0:
        app = ring_app(static_cast<int>(2 + rng.below(4)),
                       static_cast<int>(1 + rng.below(1024)));
        label = "ring";
        break;
      case 1:
        app = funnel_app(static_cast<int>(3 + rng.below(8)));
        label = "funnel";
        break;
      default:
        app = allreduce_app(static_cast<int>(2 + rng.below(4)));
        label = "allreduce";
        break;
    }
    for (const bool verify : {false, true}) {
      core::RunConfig c = cfg;
      c.ckpt.verify_snapshots = verify;
      configs.push_back(c);
      apps.push_back(app);
    }
    labels.push_back(label + "/iv" + std::to_string(cfg.ckpt.interval) +
                     "/i" + std::to_string(i));
  }

  auto factory = [&apps](const core::RunConfig&, std::size_t i) {
    return apps[i];
  };
  const auto serial = core::run_many(configs, factory, {.threads = 1});
  const auto pooled = core::run_many(configs, factory, {.threads = 8});
  ASSERT_EQ(serial.size(), pooled.size());

  int clean = 0;
  for (int i = 0; i < kPairs; ++i) {
    const std::size_t plain = 2 * static_cast<std::size_t>(i);
    expect_identical(serial[plain], pooled[plain], labels[i]);
    expect_identical(serial[plain + 1], pooled[plain + 1],
                     labels[i] + "/verify");
    // The verify twin differs only in host-side snapshot round-trips.
    expect_identical(serial[plain], serial[plain + 1],
                     labels[i] + " (plain vs verify twin)");
    if (serial[plain].clean()) ++clean;
  }
  EXPECT_GE(clean, kPairs * 9 / 10)
      << "only " << clean << "/" << kPairs << " ckpt runs were clean";
}

// The same batch must also be invariant under re-execution with an
// intermediate pool size (catches accidental global state across runs).
TEST(FuzzDeterminism, RepeatedBatchesAreIdentical) {
  auto cases = draw_cases();
  cases.resize(40);  // a slice is enough for the rerun check
  std::vector<core::RunConfig> configs;
  for (const auto& c : cases) configs.push_back(c.cfg);
  auto factory = [&cases](const core::RunConfig&, std::size_t i) {
    return cases[i].app;
  };
  const auto first = core::run_many(configs, factory, {.threads = 4});
  const auto second = core::run_many(configs, factory, {.threads = 4});
  for (std::size_t i = 0; i < first.size(); ++i) {
    expect_identical(first[i], second[i], cases[i].label);
  }
}

}  // namespace
}  // namespace sdrmpi
