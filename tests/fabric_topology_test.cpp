// Unit tests for the fat-tree fabric backend: slot → node → switch mapping
// under both placement policies, hop counting, per-link serialization,
// oversubscription stalls, and the equivalence anchor — a degenerate
// one-level fat-tree must reproduce flat-fabric timestamps bit-exactly
// across every protocol.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <memory>
#include <vector>

#include "sdrmpi/net/fabric.hpp"
#include "test_support.hpp"

namespace sdrmpi {
namespace {

using net::FatTreeFabric;
using net::NetParams;
using net::PlacementPolicy;
using net::TopologyKind;
using net::TopologySpec;

using PathClass = FatTreeFabric::PathClass;

using Harness = test::FabricHarness;

NetParams fat_tree_params(int rpn, int nps, double oversub) {
  NetParams p = NetParams::infiniband_20g();
  p.topology = TopologySpec::fat_tree(rpn, nps, oversub);
  return p;
}

TEST(FatTreeTopology, NodeSwitchMappingAndHops) {
  sim::Engine engine;
  // 8 slots, one world: 2 ranks/node -> 4 nodes, 2 nodes/switch -> 2 leaves.
  FatTreeFabric f(engine, fat_tree_params(2, 2, 2.0), 8, 8);
  EXPECT_EQ(f.nnodes(), 4);
  EXPECT_EQ(f.node_of(0), 0);
  EXPECT_EQ(f.node_of(1), 0);
  EXPECT_EQ(f.node_of(2), 1);
  EXPECT_EQ(f.node_of(7), 3);
  EXPECT_EQ(f.switch_of(0), 0);
  EXPECT_EQ(f.switch_of(3), 0);
  EXPECT_EQ(f.switch_of(4), 1);
  EXPECT_EQ(f.switch_of(7), 1);

  EXPECT_EQ(f.path_class(3, 3), PathClass::Loopback);
  EXPECT_EQ(f.path_class(0, 1), PathClass::IntraNode);
  EXPECT_EQ(f.path_class(0, 2), PathClass::IntraSwitch);
  EXPECT_EQ(f.path_class(0, 4), PathClass::InterSwitch);

  EXPECT_EQ(f.hop_count(3, 3), 0);
  EXPECT_EQ(f.hop_count(0, 1), 1);
  EXPECT_EQ(f.hop_count(0, 2), 2);
  EXPECT_EQ(f.hop_count(1, 3), 2);
  EXPECT_EQ(f.hop_count(0, 4), 4);
  EXPECT_EQ(f.hop_count(2, 6), 4);
}

TEST(FatTreeTopology, PlacementPoliciesMapReplicasDifferently) {
  sim::Engine engine;
  // 2 worlds of 4 ranks, 2 ranks/node. Spread: worlds occupy disjoint node
  // ranges; replicas of rank 0 (slots 0 and 4) land on different nodes.
  NetParams spread = fat_tree_params(2, 1, 1.0);
  FatTreeFabric fs(engine, spread, 8, 4);
  EXPECT_EQ(fs.node_of(0), 0);
  EXPECT_EQ(fs.node_of(4), 2);
  EXPECT_NE(fs.switch_of(0), fs.switch_of(4));

  // PackRanks: both replicas of a rank share a node (rpn = nworlds = 2).
  NetParams packed = spread;
  packed.topology.placement = PlacementPolicy::PackRanks;
  sim::Engine engine2;
  FatTreeFabric fp(engine2, packed, 8, 4);
  EXPECT_EQ(fp.node_of(0), fp.node_of(4));  // rank 0, worlds 0 and 1
  EXPECT_EQ(fp.node_of(1), fp.node_of(5));
  EXPECT_NE(fp.node_of(0), fp.node_of(1));  // different ranks split
}

TEST(FatTreeFabricTest, SingleFrameArrivalMatchesCostModel) {
  // One intra-switch frame: o_send + NIC ser + 2 links + intra-switch lat.
  Harness h(8, fat_tree_params(2, 2, 4.0), 8);
  h.engine.spawn("s", [&] { h.fabric->send(0, 2, h.blob(1000)); });
  h.engine.run();
  ASSERT_EQ(h.received[2].size(), 1u);
  const double wire = 1000.0 + static_cast<double>(h.params.header_bytes);
  const Time ser = static_cast<Time>(std::llround(wire * h.params.ns_per_byte));
  const Time expect =
      static_cast<Time>(std::llround(h.params.o_send_ns)) + ser /*NIC*/ +
      2 * ser /*node up+down links*/ +
      static_cast<Time>(std::llround(h.params.latency_ns));
  EXPECT_EQ(h.received[2][0].arrival, expect);
}

TEST(FatTreeFabricTest, SharedNodeUplinkSerializes) {
  // Slots 0 and 1 share node 0's uplink. Both inject a large frame at t=0
  // toward node 1; the second frame queues behind the first on the uplink.
  Harness h(8, fat_tree_params(2, 2, 2.0), 8);
  h.engine.spawn("s0", [&] { h.fabric->send(0, 2, h.blob(10000)); });
  h.engine.spawn("s1", [&] { h.fabric->send(1, 3, h.blob(10000)); });
  h.engine.run();
  ASSERT_EQ(h.received[2].size(), 1u);
  ASSERT_EQ(h.received[3].size(), 1u);
  const double wire = 10000.0 + static_cast<double>(h.params.header_bytes);
  const Time link_ser =
      static_cast<Time>(std::llround(wire * h.params.ns_per_byte));
  // Distinct NICs, one shared uplink: arrivals differ by >= one link
  // serialization (the queued frame also waited, so stats must say so).
  const Time gap = std::llabs(h.received[3][0].arrival -
                              h.received[2][0].arrival);
  EXPECT_GE(gap, link_ser);
  EXPECT_GE(h.fabric->stats().link_stalls, 1u);
  EXPECT_GE(h.fabric->stats().link_stall_ns,
            static_cast<std::uint64_t>(link_ser));
  EXPECT_EQ(h.fabric->stats().intra_switch_frames, 2u);
}

TEST(FatTreeFabricTest, IndependentNodesDoNotContend) {
  // Two intra-switch frames on disjoint node pairs (0→1 under leaf 0,
  // 2→3 under leaf 1): no shared link, identical arrival times.
  Harness h(8, fat_tree_params(2, 2, 2.0), 8);
  h.engine.spawn("s0", [&] { h.fabric->send(0, 2, h.blob(10000)); });
  h.engine.spawn("s4", [&] { h.fabric->send(4, 6, h.blob(10000)); });
  h.engine.run();
  ASSERT_EQ(h.received[2].size(), 1u);
  ASSERT_EQ(h.received[6].size(), 1u);
  EXPECT_EQ(h.received[2][0].arrival, h.received[6][0].arrival);
  EXPECT_EQ(h.fabric->stats().link_stalls, 0u);
}

TEST(FatTreeFabricTest, OversubscriptionSlowsSpineCrossings) {
  // The same inter-switch frame under 1:1 and 8:1 spines; the
  // oversubscribed spine serializes 8x slower per byte.
  const std::size_t bytes = 20000;
  Time arrival_1to1 = 0;
  Time arrival_8to1 = 0;
  {
    Harness h(8, fat_tree_params(2, 2, 1.0), 8);
    h.engine.spawn("s", [&] { h.fabric->send(0, 4, h.blob(bytes)); });
    h.engine.run();
    arrival_1to1 = h.received[4][0].arrival;
  }
  {
    Harness h(8, fat_tree_params(2, 2, 8.0), 8);
    h.engine.spawn("s", [&] { h.fabric->send(0, 4, h.blob(bytes)); });
    h.engine.run();
    arrival_8to1 = h.received[4][0].arrival;
    EXPECT_EQ(h.fabric->stats().inter_switch_frames, 1u);
  }
  const double wire = static_cast<double>(bytes) +
                      static_cast<double>(NetParams{}.header_bytes);
  const Time spine_ser_1to1 =
      static_cast<Time>(std::llround(wire * NetParams{}.ns_per_byte));
  // Two spine links each 7x slower than at 1:1.
  EXPECT_EQ(arrival_8to1 - arrival_1to1, 2 * 7 * spine_ser_1to1);
}

TEST(FatTreeFabricTest, OversubscribedSpineQueuesConcurrentCrossings) {
  // Two leaves' worth of traffic funnel into one dst leaf downlink.
  Harness h(8, fat_tree_params(2, 1, 4.0), 8);  // 1 node/switch: 4 leaves
  h.engine.spawn("s0", [&] { h.fabric->send(0, 6, h.blob(10000)); });
  h.engine.spawn("s2", [&] { h.fabric->send(2, 7, h.blob(10000)); });
  h.engine.run();
  // Both frames traverse leaf 3's downlink; one of them stalls on it.
  EXPECT_GE(h.fabric->stats().link_stalls, 1u);
  EXPECT_EQ(h.fabric->stats().inter_switch_frames, 2u);
}

TEST(FatTreeFabricTest, MakeFabricDispatchesOnTopologyKind) {
  sim::Engine engine;
  NetParams flat = NetParams::infiniband_20g();
  auto f1 = net::make_fabric(engine, flat, 4, 4);
  EXPECT_EQ(f1->kind(), TopologyKind::Flat);
  NetParams tree = fat_tree_params(2, 2, 2.0);
  auto f2 = net::make_fabric(engine, tree, 4, 4);
  EXPECT_EQ(f2->kind(), TopologyKind::FatTree);
}

TEST(FatTreeFabricTest, RejectsInvalidSpecs) {
  sim::Engine engine;
  NetParams p = fat_tree_params(0, 2, 2.0);
  EXPECT_THROW(FatTreeFabric(engine, p, 4, 4), std::invalid_argument);
  p = fat_tree_params(2, 0, 2.0);
  EXPECT_THROW(FatTreeFabric(engine, p, 4, 4), std::invalid_argument);
  p = fat_tree_params(2, 2, 0.5);
  EXPECT_THROW(FatTreeFabric(engine, p, 4, 4), std::invalid_argument);
}

// ---- the equivalence anchor -------------------------------------------------

// A one-level degenerate fat-tree (one rank per node, one leaf switch,
// links that never serialize, inherited latency) must be timestamp-identical
// to the flat backend for every protocol: the hierarchical model strictly
// generalises the flat one.
class DegenerateEquivalence
    : public ::testing::TestWithParam<core::ProtocolKind> {};

TEST_P(DegenerateEquivalence, MatchesFlatBitExactly) {
  const core::ProtocolKind proto = GetParam();
  const int r = proto == core::ProtocolKind::Native ? 1 : 2;
  auto flat_cfg = test::quick_config(4, r, proto);
  auto tree_cfg = flat_cfg;
  tree_cfg.net.topology = TopologySpec::degenerate_fat_tree();

  for (const char* wl : {"cg", "hpccg"}) {
    auto a = core::run(flat_cfg, test::small_workload(wl));
    auto b = core::run(tree_cfg, test::small_workload(wl));
    ASSERT_TRUE(test::run_clean(a)) << wl;
    ASSERT_TRUE(test::run_clean(b)) << wl;
    EXPECT_EQ(a.makespan, b.makespan) << wl;
    EXPECT_EQ(a.data_frames, b.data_frames) << wl;
    EXPECT_EQ(a.ctl_frames, b.ctl_frames) << wl;
    EXPECT_EQ(a.events_executed, b.events_executed) << wl;
    EXPECT_EQ(a.context_switches, b.context_switches) << wl;
    EXPECT_EQ(a.protocol, b.protocol) << wl;
    ASSERT_EQ(a.slots.size(), b.slots.size()) << wl;
    for (std::size_t i = 0; i < a.slots.size(); ++i) {
      EXPECT_EQ(a.slots[i].finish_time, b.slots[i].finish_time) << wl;
      EXPECT_EQ(a.slots[i].checksum, b.slots[i].checksum) << wl;
    }
    // Traffic and contention totals agree (the degenerate tree's only
    // serializing link is the NIC, same as flat); only the path-class
    // census differs — the flat backend does not classify.
    EXPECT_EQ(a.fabric.frames_sent, b.fabric.frames_sent) << wl;
    EXPECT_EQ(a.fabric.payload_bytes, b.fabric.payload_bytes) << wl;
    EXPECT_EQ(a.fabric.link_stalls, b.fabric.link_stalls) << wl;
    EXPECT_EQ(a.fabric.link_stall_ns, b.fabric.link_stall_ns) << wl;
    EXPECT_EQ(a.fabric.link_busy_ns, b.fabric.link_busy_ns) << wl;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, DegenerateEquivalence,
    ::testing::Values(core::ProtocolKind::Native, core::ProtocolKind::Sdr,
                      core::ProtocolKind::Leader,
                      core::ProtocolKind::RedMpiSd),
    [](const auto& info) {
      std::string name = core::to_string(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// Faulty runs must also agree: failover retransmissions ride the same
// fabric paths.
TEST(DegenerateEquivalenceFaults, FailoverMatchesFlat) {
  auto flat_cfg = test::quick_config(4, 2, core::ProtocolKind::Sdr);
  flat_cfg.faults.push_back({.slot = 6, .at_time = -1, .at_send = 5});
  auto tree_cfg = flat_cfg;
  tree_cfg.net.topology = TopologySpec::degenerate_fat_tree();
  auto a = core::run(flat_cfg, test::small_workload("cg"));
  auto b = core::run(tree_cfg, test::small_workload("cg"));
  ASSERT_TRUE(test::run_clean(a));
  ASSERT_TRUE(test::run_clean(b));
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.protocol, b.protocol);
  EXPECT_EQ(a.fabric.frames_dropped_dead_dst, b.fabric.frames_dropped_dead_dst);
}

}  // namespace
}  // namespace sdrmpi
