// Unit tests for the fabric: cost model, FIFO delivery, egress
// serialization, crash semantics, out-of-band injection.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sdrmpi/net/fabric.hpp"
#include "test_support.hpp"

namespace sdrmpi::net {
namespace {

using Harness = test::FabricHarness;

TEST(Fabric, DeliversPayloadIntact) {
  Harness h(2);
  h.engine.spawn("sender", [&] {
    auto data = h.blob(16, 0x5c);
    h.fabric->send(0, 1, data);
  });
  auto out = h.engine.run();
  EXPECT_TRUE(out.clean());
  ASSERT_EQ(h.received[1].size(), 1u);
  EXPECT_EQ(h.received[1][0].data.size(), 16u);
  EXPECT_EQ(h.received[1][0].data[3], std::byte{0x5c});
  EXPECT_EQ(h.received[1][0].src_slot, 0);
}

TEST(Fabric, ArrivalMatchesCostModel) {
  Harness h(2);
  h.engine.spawn("sender", [&] { h.fabric->send(0, 1, h.blob(100)); });
  h.engine.run();
  ASSERT_EQ(h.received[1].size(), 1u);
  const auto& d = h.received[1][0];
  const double wire = 100.0 + static_cast<double>(h.params.header_bytes);
  const Time expect =
      static_cast<Time>(std::llround(h.params.o_send_ns)) +
      static_cast<Time>(std::llround(wire * h.params.ns_per_byte)) +
      static_cast<Time>(std::llround(h.params.latency_ns));
  EXPECT_EQ(d.arrival, expect);
}

TEST(Fabric, SenderChargedOverhead) {
  Harness h(2);
  Time after = -1;
  h.engine.spawn("sender", [&] {
    h.fabric->send(0, 1, h.blob(8));
    after = h.engine.now();
  });
  h.engine.run();
  EXPECT_EQ(after, static_cast<Time>(std::llround(h.params.o_send_ns)));
}

TEST(Fabric, FifoPerChannel) {
  Harness h(2);
  h.engine.spawn("sender", [&] {
    for (unsigned char i = 0; i < 10; ++i) h.fabric->send(0, 1, h.blob(4, i));
  });
  h.engine.run();
  ASSERT_EQ(h.received[1].size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(h.received[1][i].data[0], std::byte{static_cast<unsigned char>(i)});
    if (i > 0) {
      EXPECT_GT(h.received[1][i].arrival, h.received[1][i - 1].arrival);
    }
  }
}

TEST(Fabric, EgressSerialization) {
  // Two back-to-back large frames: the second's arrival is pushed out by
  // the first's wire time (one NIC per process).
  Harness h(3);
  h.engine.spawn("sender", [&] {
    h.fabric->send(0, 1, h.blob(10000));
    h.fabric->send(0, 2, h.blob(10000));
  });
  h.engine.run();
  ASSERT_EQ(h.received[1].size(), 1u);
  ASSERT_EQ(h.received[2].size(), 1u);
  const Time gap = h.received[2][0].arrival - h.received[1][0].arrival;
  const double wire = 10000.0 + static_cast<double>(h.params.header_bytes);
  // Delta >= serialization of one frame minus the second o_send charge.
  EXPECT_GE(gap, static_cast<Time>(wire * h.params.ns_per_byte) -
                     static_cast<Time>(std::llround(h.params.o_send_ns)));
}

TEST(Fabric, BiggerFramesTakeLonger) {
  Harness h(2);
  h.engine.spawn("s", [&] {
    h.fabric->send(0, 1, h.blob(1));
  });
  h.engine.run();
  const Time small = h.received[1][0].arrival;

  Harness h2(2);
  h2.engine.spawn("s", [&] {
    h2.fabric->send(0, 1, h2.blob(1 << 20));
  });
  h2.engine.run();
  EXPECT_GT(h2.received[1][0].arrival, small + 100000);
}

TEST(Fabric, ExplicitWireBytesOverride) {
  Harness h(2);
  h.engine.spawn("s", [&] {
    // Tiny payload but modeled as a 48-byte control frame.
    h.fabric->send(0, 1, h.blob(4), h.params.ctl_frame_bytes);
  });
  h.engine.run();
  const Time expect =
      static_cast<Time>(std::llround(h.params.o_send_ns)) +
      static_cast<Time>(std::llround(
          static_cast<double>(h.params.ctl_frame_bytes) * h.params.ns_per_byte)) +
      static_cast<Time>(std::llround(h.params.latency_ns));
  EXPECT_EQ(h.received[1][0].arrival, expect);
}

TEST(Fabric, DeadDestinationDropsFrames) {
  Harness h(2);
  h.fabric->set_alive(1, false);
  h.engine.spawn("s", [&] { h.fabric->send(0, 1, h.blob(8)); });
  h.engine.run();
  EXPECT_TRUE(h.received[1].empty());
  EXPECT_EQ(h.fabric->stats().frames_dropped_dead_dst, 1u);
}

TEST(Fabric, InFlightFramesFromDeadSenderStillDeliver) {
  // The paper's reliable-channel model: a frame injected before the crash
  // reaches its destination.
  Harness h(2);
  h.engine.spawn("s", [&] {
    h.fabric->send(0, 1, h.blob(8));
    // Sender dies immediately after injection.
    h.fabric->set_alive(0, false);
  });
  h.engine.run();
  EXPECT_EQ(h.received[1].size(), 1u);
}

TEST(Fabric, OobInjectionArrivesAtRequestedTime) {
  Harness h(2);
  h.fabric->inject_oob(1, h.blob(4), 12345);
  h.engine.run();
  ASSERT_EQ(h.received[1].size(), 1u);
  EXPECT_EQ(h.received[1][0].arrival, 12345);
  EXPECT_TRUE(h.received[1][0].out_of_band);
  EXPECT_EQ(h.received[1][0].src_slot, -1);
}

TEST(Fabric, StatsCountFrames) {
  Harness h(2);
  h.engine.spawn("s", [&] {
    h.fabric->send(0, 1, h.blob(100));
    h.fabric->send(0, 1, h.blob(100));
  });
  h.engine.run();
  EXPECT_EQ(h.fabric->stats().frames_sent, 2u);
  EXPECT_EQ(h.fabric->stats().payload_bytes,
            2 * (100 + h.params.header_bytes));
}

TEST(Fabric, ReattachReplacesSink) {
  Harness h(2);
  struct Recorder {
    std::vector<Delivery> got;
    void on_delivery(Delivery&& d) { got.push_back(std::move(d)); }
  } second;
  h.fabric->set_alive(1, false);
  h.fabric->reattach(1, -1, Fabric::Sink::of<&Recorder::on_delivery>(&second));
  EXPECT_TRUE(h.fabric->alive(1));  // reattach revives the slot
  h.engine.spawn("s", [&] { h.fabric->send(0, 1, h.blob(8)); });
  h.engine.run();
  EXPECT_TRUE(h.received[1].empty());
  EXPECT_EQ(second.got.size(), 1u);
}

TEST(Fabric, DoubleAttachThrows) {
  Harness h(2);
  const Fabric::Sink noop{[](void*, Delivery&&) {}, nullptr};
  EXPECT_THROW(h.fabric->attach(0, -1, noop), std::logic_error);
}

TEST(NetParamsTest, PresetsAreSane) {
  const auto ib = NetParams::infiniband_20g();
  const auto eth = NetParams::gigabit_ethernet();
  const auto fast = NetParams::instant();
  EXPECT_LT(ib.latency_ns, eth.latency_ns);
  EXPECT_LT(ib.ns_per_byte, eth.ns_per_byte);
  EXPECT_LT(fast.latency_ns, ib.latency_ns);
  // IB-20G calibration: ~1.67us one-byte half-round (o_s + wire + o_r).
  const double one_byte = ib.o_send_ns + ib.latency_ns + ib.o_recv_ns +
                          static_cast<double>(ib.header_bytes + 1) * ib.ns_per_byte;
  EXPECT_NEAR(one_byte, 1670.0, 70.0);
}

}  // namespace
}  // namespace sdrmpi::net
