// Recovery (paper §3.4, Figure 4): the substitute forks a fresh replica at
// an application safe point; FIFO-ordered notifications cut the message
// streams so peers resend exactly what the new replica is missing.
#include <gtest/gtest.h>

#include <cstring>

#include "test_support.hpp"

namespace sdrmpi {
namespace {

using test::quick_config;
using test::run_clean;

/// Recovery-aware iterative app: a ring exchange whose whole state is one
/// (iter, value) pair, snapshotted every iteration.
struct RecoverableState {
  int iter = 0;
  double value = 0.0;
};

std::vector<std::byte> serialize(const RecoverableState& s) {
  std::vector<std::byte> out(sizeof(RecoverableState));
  std::memcpy(out.data(), &s, sizeof(RecoverableState));
  return out;
}

RecoverableState deserialize(std::span<const std::byte> in) {
  RecoverableState s;
  std::memcpy(&s, in.data(), sizeof(RecoverableState));
  return s;
}

core::AppFn ring_app(int iters) {
  return [iters](mpi::Env& env) {
    auto& world = env.world();
    const int n = world.size();
    const int right = (env.rank() + 1) % n;
    const int left = (env.rank() - 1 + n) % n;

    RecoverableState st{0, static_cast<double>(env.rank() + 1)};
    if (env.restart_state().has_value()) {
      st = deserialize(*env.restart_state());
    }
    for (; st.iter < iters; ++st.iter) {
      env.offer_snapshot(serialize(st));
      env.recovery_point();
      double incoming = 0.0;
      world.sendrecv(std::span<const double>(&st.value, 1), right, 3,
                     std::span<double>(&incoming, 1), left, 3);
      st.value = 0.5 * (st.value + incoming) + 1.0 / (st.iter + 1.0);
    }
    util::Checksum cs;
    cs.add_double(st.value);
    env.report_checksum(cs.digest());
  };
}

TEST(Recovery, Figure4ReplicaIsRecoveredAndFinishes) {
  auto native =
      core::run(quick_config(2, 1, core::ProtocolKind::Native), ring_app(30));
  ASSERT_TRUE(run_clean(native));

  auto cfg = quick_config(2, 2, core::ProtocolKind::Sdr);
  cfg.auto_recover = true;
  cfg.faults.push_back({.slot = 3, .at_time = -1, .at_send = 8});
  auto res = core::run(cfg, ring_app(30));
  ASSERT_TRUE(run_clean(res));
  EXPECT_EQ(res.protocol.recoveries, 1u);

  // Every slot — including the recovered one — finished with the native
  // result.
  for (const auto& slot : res.slots) {
    EXPECT_EQ(slot.final_state, "Finished") << "slot " << slot.slot;
    EXPECT_EQ(slot.checksum, native.checksum_of(slot.rank))
        << "slot " << slot.slot;
  }
}

TEST(Recovery, FourRanksRecoverMidRun) {
  auto native =
      core::run(quick_config(4, 1, core::ProtocolKind::Native), ring_app(24));
  ASSERT_TRUE(run_clean(native));

  auto cfg = quick_config(4, 2, core::ProtocolKind::Sdr);
  cfg.auto_recover = true;
  cfg.faults.push_back({.slot = 6, .at_time = -1, .at_send = 10});
  auto res = core::run(cfg, ring_app(24));
  ASSERT_TRUE(run_clean(res));
  EXPECT_EQ(res.protocol.recoveries, 1u);
  for (const auto& slot : res.slots) {
    EXPECT_EQ(slot.checksum, native.checksum_of(slot.rank))
        << "slot " << slot.slot;
  }
}

TEST(Recovery, WithoutSnapshotNoRecoveryButStillCorrect) {
  // Apps that never offer a snapshot cannot be recovered; the run must
  // still complete correctly in degraded (substitute) mode.
  auto app = [](mpi::Env& env) {
    auto& world = env.world();
    double v = env.rank();
    for (int i = 0; i < 10; ++i) {
      v = world.allreduce_value(v, mpi::Op::Sum) / world.size();
      env.recovery_point();  // safe point, but no snapshot offered
    }
    util::Checksum cs;
    cs.add_double(v);
    env.report_checksum(cs.digest());
  };
  auto native = core::run(quick_config(2, 1, core::ProtocolKind::Native), app);

  auto cfg = quick_config(2, 2, core::ProtocolKind::Sdr);
  cfg.auto_recover = true;
  cfg.faults.push_back({.slot = 2, .at_time = -1, .at_send = 4});
  auto res = core::run(cfg, app);
  ASSERT_TRUE(run_clean(res));
  EXPECT_EQ(res.protocol.recoveries, 0u);
  // Slot 2 (world 1, rank 0) is the crashed process; every survivor must
  // match native.
  EXPECT_EQ(res.checksum_of(0, 0), native.checksum_of(0));
  EXPECT_EQ(res.checksum_of(1, 0), native.checksum_of(1));
  EXPECT_EQ(res.checksum_of(1, 1), native.checksum_of(1));
  EXPECT_EQ(res.slots[2].final_state, "Crashed");
}

TEST(Recovery, RecoveredReplicaParticipatesInAcks) {
  // After recovery the system returns to the symmetric state: the
  // recovered replica acks messages received after the notification
  // (Figure 4's "p00 only needs to send an ack for messages received
  // after the notification").
  auto cfg = quick_config(2, 2, core::ProtocolKind::Sdr);
  cfg.auto_recover = true;
  cfg.faults.push_back({.slot = 3, .at_time = -1, .at_send = 4});
  auto res = core::run(cfg, ring_app(40));
  ASSERT_TRUE(run_clean(res));
  EXPECT_EQ(res.protocol.recoveries, 1u);
  // Stale acks may exist around the failover window, but the bulk must be
  // consumed: sent ~ received.
  EXPECT_GT(res.protocol.acks_received,
            res.protocol.acks_sent - res.protocol.acks_sent / 4);
}

TEST(Recovery, NotSupportedForTripleReplication) {
  auto cfg = quick_config(2, 3, core::ProtocolKind::Sdr);
  cfg.auto_recover = true;
  cfg.faults.push_back({.slot = 5, .at_time = -1, .at_send = 4});
  auto res = core::run(cfg, ring_app(12));
  // The run completes via substitution, but no recovery happens (§3.4:
  // single-broadcast cut only works for r = 2).
  ASSERT_TRUE(run_clean(res));
  EXPECT_EQ(res.protocol.recoveries, 0u);
}

}  // namespace
}  // namespace sdrmpi
