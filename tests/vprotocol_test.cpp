// The vProtocol interception layer: hook firing order and semantics — the
// contract SDR-MPI is built on (paper §4.1: pml_isend/pml_irecv pre-
// treatment plus the patched pml_match / pml_recv_complete events).
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "test_support.hpp"

namespace sdrmpi {
namespace {

using test::quick_config;
using test::run_clean;

/// Records every hook invocation; forwards to the default behaviour.
class SpyProtocol : public mpi::Vprotocol {
 public:
  struct Log {
    std::vector<std::string> events;
  };
  explicit SpyProtocol(Log* log) : log_(log) {}

  void isend(mpi::Endpoint& ep, const mpi::SendArgs& a,
             const mpi::Request& req) override {
    log_->events.push_back("isend:" + std::to_string(a.dst_rank) + ":seq" +
                           std::to_string(a.seq));
    mpi::Vprotocol::isend(ep, a, req);
  }
  void irecv(mpi::Endpoint& ep, const mpi::RecvArgs& a,
             const mpi::Request& req) override {
    log_->events.push_back("irecv:" + std::to_string(a.src_rank));
    mpi::Vprotocol::irecv(ep, a, req);
  }
  void on_match(mpi::Endpoint&, const mpi::FrameHeader& h,
                const mpi::Request&) override {
    log_->events.push_back("match:seq" + std::to_string(h.seq));
  }
  void on_recv_complete(mpi::Endpoint&, const mpi::FrameHeader& h,
                        const mpi::Request&) override {
    log_->events.push_back("recv_complete:seq" + std::to_string(h.seq));
  }
  void on_app_complete(mpi::Endpoint&, const mpi::Request& req) override {
    log_->events.push_back("app_complete:seq" + std::to_string(req->seq));
  }

 private:
  Log* log_;
};

struct Rig {
  sim::Engine engine;
  net::FlatFabric fabric;
  std::vector<std::unique_ptr<mpi::Endpoint>> eps;
  std::vector<SpyProtocol::Log> logs;

  explicit Rig(int n)
      : fabric(engine, net::NetParams::infiniband_20g(), n), logs(n) {
    for (int s = 0; s < n; ++s) {
      auto ep = std::make_unique<mpi::Endpoint>(fabric, s, 0, 1);
      ep->register_comm_fixed(2, 3, s, mpi::RankMap::iota(0, n));
      ep->set_protocol(
          std::make_unique<SpyProtocol>(&logs[static_cast<std::size_t>(s)]));
      eps.push_back(std::move(ep));
    }
  }

  void spawn(int slot, std::function<void(mpi::Endpoint&)> body) {
    const int pid = engine.spawn(
        "p" + std::to_string(slot),
        [this, slot, body = std::move(body)] { body(*eps[static_cast<std::size_t>(slot)]); });
    eps[static_cast<std::size_t>(slot)]->bind_process(pid);
  }
};

TEST(Vprotocol, HookOrderOnMatchedReceive) {
  Rig rig(2);
  rig.spawn(0, [](mpi::Endpoint& ep) {
    double v = 1.5;
    auto req = ep.isend(2, 1, 0, std::as_bytes(std::span<const double>(&v, 1)));
    ep.wait(req);
  });
  rig.spawn(1, [](mpi::Endpoint& ep) {
    double v = 0.0;
    auto req = ep.irecv(2, 0, 0, std::as_writable_bytes(std::span<double>(&v, 1)));
    ep.wait(req);
    EXPECT_DOUBLE_EQ(v, 1.5);
  });
  auto out = rig.engine.run();
  ASSERT_TRUE(out.clean());
  const auto& ev = rig.logs[1].events;
  // irecv posted, then match, then recv_complete, then app completion.
  ASSERT_EQ(ev.size(), 4u);
  EXPECT_EQ(ev[0], "irecv:0");
  EXPECT_EQ(ev[1], "match:seq0");
  EXPECT_EQ(ev[2], "recv_complete:seq0");
  EXPECT_EQ(ev[3], "app_complete:seq0");
  ASSERT_EQ(rig.logs[0].events.size(), 1u);
  EXPECT_EQ(rig.logs[0].events[0], "isend:1:seq0");
}

TEST(Vprotocol, SequenceNumbersPerChannel) {
  Rig rig(3);
  rig.spawn(0, [](mpi::Endpoint& ep) {
    double v = 0.0;
    const auto bytes = std::as_bytes(std::span<const double>(&v, 1));
    auto a = ep.isend(2, 1, 0, bytes);
    auto b = ep.isend(2, 1, 0, bytes);
    auto c = ep.isend(2, 2, 0, bytes);  // different channel: its own seq 0
    ep.wait(a);
    ep.wait(b);
    ep.wait(c);
  });
  rig.spawn(1, [](mpi::Endpoint& ep) {
    double v = 0.0;
    auto buf = std::as_writable_bytes(std::span<double>(&v, 1));
    auto r1 = ep.irecv(2, 0, 0, buf);
    ep.wait(r1);
    auto r2 = ep.irecv(2, 0, 0, buf);
    ep.wait(r2);
  });
  rig.spawn(2, [](mpi::Endpoint& ep) {
    double v = 0.0;
    auto r = ep.irecv(2, 0, 0, std::as_writable_bytes(std::span<double>(&v, 1)));
    ep.wait(r);
  });
  auto out = rig.engine.run();
  ASSERT_TRUE(out.clean());
  const auto& ev = rig.logs[0].events;
  ASSERT_EQ(ev.size(), 3u);
  EXPECT_EQ(ev[0], "isend:1:seq0");
  EXPECT_EQ(ev[1], "isend:1:seq1");
  EXPECT_EQ(ev[2], "isend:2:seq0");
}

TEST(Vprotocol, RecvCompleteFiresDuringOtherCallsProgress) {
  // The paper's key mechanism: irecvComplete (and thus ack emission) fires
  // while the process is blocked inside an unrelated MPI call.
  Rig rig(2);
  rig.spawn(0, [](mpi::Endpoint& ep) {
    double in = 0.0, out = 2.0;
    auto rreq = ep.irecv(2, 1, 1, std::as_writable_bytes(std::span<double>(&in, 1)));
    // Blocking send: while waiting, progress must complete the receive.
    auto sreq = ep.isend(2, 1, 2, std::as_bytes(std::span<const double>(&out, 1)));
    ep.wait(sreq);
    ep.wait(rreq);
  });
  rig.spawn(1, [](mpi::Endpoint& ep) {
    double in = 0.0, out = 3.0;
    auto rreq = ep.irecv(2, 0, 2, std::as_writable_bytes(std::span<double>(&in, 1)));
    auto sreq = ep.isend(2, 0, 1, std::as_bytes(std::span<const double>(&out, 1)));
    ep.wait(sreq);
    ep.wait(rreq);
  });
  auto out = rig.engine.run();
  ASSERT_TRUE(out.clean());
  for (int s = 0; s < 2; ++s) {
    bool seen_complete = false;
    for (const auto& e : rig.logs[static_cast<std::size_t>(s)].events) {
      if (e.rfind("recv_complete", 0) == 0) seen_complete = true;
    }
    EXPECT_TRUE(seen_complete);
  }
}

TEST(Vprotocol, UnexpectedMessageMatchesOnLatePost) {
  Rig rig(2);
  rig.spawn(0, [](mpi::Endpoint& ep) {
    double v = 7.0;
    auto req = ep.isend(2, 1, 9, std::as_bytes(std::span<const double>(&v, 1)));
    ep.wait(req);
  });
  rig.spawn(1, [](mpi::Endpoint& ep) {
    ep.engine().advance(timeunits::microseconds(50.0));  // let it arrive
    double v = 0.0;
    auto req = ep.irecv(2, 0, 9, std::as_writable_bytes(std::span<double>(&v, 1)));
    ep.wait(req);
    EXPECT_DOUBLE_EQ(v, 7.0);
  });
  auto out = rig.engine.run();
  ASSERT_TRUE(out.clean());
  EXPECT_EQ(rig.eps[1]->stats().unexpected, 1u);
  // match + recv_complete still fired, after the late irecv.
  const auto& ev = rig.logs[1].events;
  ASSERT_GE(ev.size(), 3u);
  EXPECT_EQ(ev[0], "irecv:0");
  EXPECT_EQ(ev[1], "match:seq0");
}

}  // namespace
}  // namespace sdrmpi
