// Unit tests for the discrete-event engine: scheduling order, virtual
// clocks, block/wake, crash unwinding, deadlock and time-limit detection —
// the semantics the fiber rewrite must preserve — plus determinism of
// core::run_many across pool sizes (a run is confined to one host thread,
// so pool parallelism must never leak into outcomes).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sdrmpi/core/batch.hpp"
#include "sdrmpi/sim/engine.hpp"

namespace sdrmpi::sim {
namespace {

TEST(Engine, RunsProcessesToCompletion) {
  Engine e;
  int done = 0;
  e.spawn("a", [&] { ++done; });
  e.spawn("b", [&] { ++done; });
  auto out = e.run();
  EXPECT_TRUE(out.clean());
  EXPECT_EQ(done, 2);
}

TEST(Engine, AdvanceMovesClock) {
  Engine e;
  e.spawn("a", [&] {
    EXPECT_EQ(e.now(), 0);
    e.advance(100);
    EXPECT_EQ(e.now(), 100);
    e.advance_to(50);  // no-op backwards
    EXPECT_EQ(e.now(), 100);
    e.advance_to(250);
    EXPECT_EQ(e.now(), 250);
  });
  auto out = e.run();
  EXPECT_TRUE(out.clean());
  EXPECT_EQ(out.end_time, 250);
}

TEST(Engine, EventsExecuteInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule(300, [&] { order.push_back(3); });
  e.schedule(100, [&] { order.push_back(1); });
  e.schedule(200, [&] { order.push_back(2); });
  auto out = e.run();
  EXPECT_TRUE(out.clean());
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, EventTieBreakByInsertion) {
  Engine e;
  std::vector<int> order;
  e.schedule(100, [&] { order.push_back(1); });
  e.schedule(100, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Engine, SmallestClockRunsFirst) {
  Engine e;
  std::vector<char> order;
  e.spawn("slow", [&] {
    e.advance(1000);
    e.yield();
    order.push_back('s');
  });
  e.spawn("fast", [&] {
    e.advance(10);
    e.yield();
    order.push_back('f');
  });
  e.run();
  EXPECT_EQ(order, (std::vector<char>{'f', 's'}));
}

TEST(Engine, EventsInterleaveWithProcesses) {
  Engine e;
  std::vector<int> order;
  e.schedule(50, [&] { order.push_back(-1); });
  e.spawn("p", [&] {
    order.push_back(1);  // clock 0 < 50: process first
    e.advance(100);
    e.yield();  // now the event at 50 must run before we continue
    order.push_back(2);
  });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, -1, 2}));
}

TEST(Engine, BlockAndWake) {
  Engine e;
  bool resumed = false;
  const int pid = e.spawn("sleeper", [&] {
    e.block("test");
    resumed = true;
    EXPECT_GE(e.now(), 500);
  });
  e.schedule(500, [&, pid] { e.wake(pid, 500); });
  auto out = e.run();
  EXPECT_TRUE(out.clean());
  EXPECT_TRUE(resumed);
}

TEST(Engine, WakeOnRunnableIsNoop) {
  Engine e;
  const int pid = e.spawn("p", [&] { e.advance(10); });
  e.wake(pid, 999);  // not blocked: must not touch the clock
  auto out = e.run();
  EXPECT_TRUE(out.clean());
  EXPECT_EQ(e.process(pid).clock(), 10);
}

TEST(Engine, DeadlockDetected) {
  Engine e;
  e.spawn("a", [&] { e.block("never"); });
  e.spawn("b", [&] { e.block("never"); });
  auto out = e.run();
  EXPECT_TRUE(out.deadlock);
  EXPECT_EQ(out.blocked_pids.size(), 2u);
  EXPECT_EQ(e.process(0).block_reason(), "never");
}

TEST(Engine, NoDeadlockWhenAllFinish) {
  Engine e;
  const int pid = e.spawn("a", [&] { e.block("waiting"); });
  e.spawn("b", [&, pid] {
    e.advance(10);
    e.wake(pid, e.now());
  });
  auto out = e.run();
  EXPECT_FALSE(out.deadlock);
  EXPECT_TRUE(out.clean());
}

TEST(Engine, CrashUnwindsBlockedProcess) {
  Engine e;
  bool after_block = false;
  const int pid = e.spawn("victim", [&] {
    e.block("forever");
    after_block = true;  // must never run
  });
  e.schedule(100, [&, pid] { e.request_crash(pid); });
  auto out = e.run();
  EXPECT_FALSE(out.deadlock);
  EXPECT_FALSE(after_block);
  EXPECT_TRUE(e.crashed(pid));
}

TEST(Engine, CrashAtYieldPoint) {
  Engine e;
  int steps = 0;
  const int pid = e.spawn("victim", [&] {
    for (int i = 0; i < 100; ++i) {
      e.advance(10);
      e.yield();
      ++steps;
    }
  });
  e.schedule(255, [&, pid] { e.request_crash(pid); });
  auto out = e.run();
  EXPECT_TRUE(e.crashed(pid));
  EXPECT_LT(steps, 100);
  EXPECT_FALSE(out.deadlock);
}

TEST(Engine, RaiiRunsDuringCrashUnwind) {
  Engine e;
  bool destroyed = false;
  struct Sentinel {
    bool* flag;
    ~Sentinel() { *flag = true; }
  };
  const int pid = e.spawn("victim", [&] {
    Sentinel s{&destroyed};
    e.block("forever");
  });
  e.schedule(10, [&, pid] { e.request_crash(pid); });
  e.run();
  EXPECT_TRUE(destroyed);
}

TEST(Engine, FailedProcessReported) {
  Engine e;
  e.spawn("thrower", [] { throw std::runtime_error("boom"); });
  auto out = e.run();
  EXPECT_FALSE(out.clean());
  ASSERT_EQ(out.failed_pids.size(), 1u);
  EXPECT_NE(e.process(out.failed_pids[0]).error(), nullptr);
}

TEST(Engine, TimeLimit) {
  Engine e;
  e.set_time_limit(1000);
  e.spawn("runner", [&] {
    for (;;) {
      e.advance(100);
      e.yield();
    }
  });
  auto out = e.run();
  EXPECT_TRUE(out.time_limit_hit);
  EXPECT_FALSE(out.clean());
}

TEST(Engine, SpawnDuringRun) {
  Engine e;
  std::vector<int> order;
  e.spawn("parent", [&] {
    e.advance(100);
    order.push_back(1);
    e.spawn("child", [&] {
      EXPECT_GE(e.now(), 100);  // child starts at spawn time
      order.push_back(2);
    });
    e.advance(10);
    e.yield();
    order.push_back(3);
  });
  auto out = e.run();
  EXPECT_TRUE(out.clean());
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1);
  // child (clock 100) runs before parent resumes (clock 110)
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(order[2], 3);
}

TEST(Engine, MaybeYieldSkipsWhenNothingOlder) {
  Engine e;
  std::uint64_t switches_before = 0;
  e.spawn("lonely", [&] {
    for (int i = 0; i < 1000; ++i) {
      e.advance(1);
      e.maybe_yield();  // no other entity: should not context-switch
    }
  });
  auto out = e.run();
  switches_before = out.context_switches;
  // One switch in, one out.
  EXPECT_LE(switches_before, 2u);
}

TEST(Engine, DeterministicOutcome) {
  auto run_once = [] {
    Engine e;
    std::vector<int> order;
    for (int p = 0; p < 4; ++p) {
      e.spawn("p" + std::to_string(p), [&, p] {
        for (int i = 0; i < 5; ++i) {
          e.advance(10 * (p + 1));
          e.yield();
          order.push_back(p);
        }
      });
    }
    e.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Engine, CurrentOutsideProcessThrows) {
  Engine e;
  EXPECT_THROW((void)e.current(), std::logic_error);
  EXPECT_FALSE(e.in_process_context());
}

TEST(Engine, EventWinsTieAgainstProcess) {
  // Scheduling rule: pending events win ties against runnable processes.
  Engine e;
  std::vector<int> order;
  e.spawn("p", [&] {
    e.advance(100);
    e.yield();
    order.push_back(1);
  });
  e.schedule(100, [&] { order.push_back(-1); });
  auto out = e.run();
  EXPECT_TRUE(out.clean());
  EXPECT_EQ(order, (std::vector<int>{-1, 1}));
}

TEST(Engine, MaybeYieldSwitchesWhenOlderProcessExists) {
  Engine e;
  std::vector<char> order;
  e.spawn("ahead", [&] {
    e.advance(100);
    // "behind" (clock 0) is older: maybe_yield must give it the engine.
    e.maybe_yield();
    order.push_back('a');
  });
  e.spawn("behind", [&] {
    e.advance(10);
    order.push_back('b');
  });
  auto out = e.run();
  EXPECT_TRUE(out.clean());
  EXPECT_EQ(order, (std::vector<char>{'b', 'a'}));
}

TEST(Engine, FiberStacksRecycledAcrossManyProcesses) {
  // Spawn waves of short-lived processes; terminated fibers hand their
  // stacks back to the engine cache, so this neither exhausts memory nor
  // perturbs scheduling.
  Engine e;
  int done = 0;
  e.spawn("spawner", [&] {
    for (int wave = 0; wave < 50; ++wave) {
      for (int i = 0; i < 8; ++i) {
        e.spawn("w", [&] {
          e.advance(1);
          ++done;
        });
      }
      e.advance(10);
      e.yield();
    }
  });
  auto out = e.run();
  EXPECT_TRUE(out.clean());
  EXPECT_EQ(done, 400);
  EXPECT_EQ(e.process_count(), 401u);
}

TEST(Engine, StacksAllocatedLazilyAtFirstDispatch) {
  // Spawning maps nothing: a process pays for a stack only when it is
  // first dispatched. This is what lets a 4k-rank spawn phase cost
  // near-zero address space up front.
  Engine e;
  for (int i = 0; i < 32; ++i) {
    e.spawn("p", [&] { e.advance(1); });
  }
  EXPECT_EQ(e.stack_stats().stacks_created, 0u);
  EXPECT_EQ(e.stack_stats().bytes_mapped, 0u);
  auto out = e.run();
  EXPECT_TRUE(out.clean());
  EXPECT_GT(e.stack_stats().stacks_created, 0u);
}

TEST(Engine, SequentialFibersShareOneStack) {
  // Run-to-completion processes hand their stack back before the next one
  // dispatches, so any number of sequential fibers costs one mapping.
  Engine e;
  for (int i = 0; i < 5; ++i) {
    e.spawn("p", [] {});
  }
  auto out = e.run();
  EXPECT_TRUE(out.clean());
  EXPECT_EQ(e.stack_stats().stacks_created, 1u);
  EXPECT_EQ(e.stack_stats().stacks_recycled, 4u);
  EXPECT_EQ(e.stack_stats().stacks_dropped, 0u);
}

TEST(Engine, InterleavedFibersEachGetTheirOwnStack) {
  // Yielding keeps a fiber live, so interleaved processes genuinely hold
  // concurrent stacks — the mapped high-water tracks peak concurrency,
  // not total process count.
  Engine e;
  for (int i = 0; i < 4; ++i) {
    e.spawn("p", [&] {
      for (int j = 0; j < 3; ++j) {
        e.advance(1);
        e.yield();
      }
    });
  }
  auto out = e.run();
  EXPECT_TRUE(out.clean());
  EXPECT_EQ(e.stack_stats().stacks_created, 4u);
  EXPECT_GT(e.stack_stats().bytes_mapped_peak, 0u);
}

TEST(Engine, StackCacheCapZeroDropsEveryStack) {
  Engine e;
  e.set_stack_cache_cap(0);
  for (int i = 0; i < 5; ++i) {
    e.spawn("p", [] {});
  }
  auto out = e.run();
  EXPECT_TRUE(out.clean());
  EXPECT_EQ(e.stack_stats().stacks_created, 5u);
  EXPECT_EQ(e.stack_stats().stacks_recycled, 0u);
  EXPECT_EQ(e.stack_stats().stacks_dropped, 5u);
  EXPECT_EQ(e.stack_stats().bytes_mapped, 0u);
}

TEST(Engine, FiberStackSizeIsConfigurable) {
  constexpr std::size_t kBytes = std::size_t{1} << 20;
  Engine e;
  e.set_fiber_stack_bytes(kBytes);
  e.spawn("p", [] {});
  auto out = e.run();
  EXPECT_TRUE(out.clean());
  // mapped_bytes = usable bytes + guard page + page rounding; bound the
  // overhead loosely so page-size differences don't break the test.
  EXPECT_GE(e.stack_stats().bytes_mapped_peak, kBytes);
  EXPECT_LE(e.stack_stats().bytes_mapped_peak, kBytes + (std::size_t{64} << 10));
}

TEST(Engine, WatermarkReportsStackDepth) {
  // The watermark fill is read from the environment at engine
  // construction; painted stacks report the deepest frame reached.
  ::setenv("SDRMPI_STACK_WATERMARK", "1", 1);
  {
    Engine e;
    e.spawn("p", [&] { e.advance(1); });
    auto out = e.run();
    EXPECT_TRUE(out.clean());
    EXPECT_GT(e.stack_stats().stack_depth_peak, 0u);
    EXPECT_LT(e.stack_stats().stack_depth_peak, e.fiber_stack_bytes());
  }
  ::unsetenv("SDRMPI_STACK_WATERMARK");
}

TEST(Engine, RunManyDeterministicAcrossPoolSizes) {
  // One simulated run occupies exactly one host thread, so outcomes must be
  // bit-identical whatever the pool size: same end time, event count, and
  // endpoint traffic totals on 1-thread and 8-thread pools.
  std::vector<core::RunConfig> configs;
  for (int n = 2; n <= 5; ++n) {
    core::RunConfig cfg;
    cfg.nranks = n;
    cfg.replication = 2;
    cfg.protocol = core::ProtocolKind::Sdr;
    configs.push_back(cfg);
  }
  auto app = [](mpi::Env& env) {
    double x = env.rank() * 3.0 + 1.0;
    for (int i = 0; i < 4; ++i) {
      x = env.world().allreduce_value(x, mpi::Op::Sum);
    }
    env.report_checksum(static_cast<std::uint64_t>(x));
  };
  auto serial = core::run_many(configs, core::AppFn(app), {.threads = 1});
  auto parallel = core::run_many(configs, core::AppFn(app), {.threads = 8});
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(serial[i].clean());
    EXPECT_EQ(serial[i].makespan, parallel[i].makespan);
    EXPECT_EQ(serial[i].events_executed, parallel[i].events_executed);
    EXPECT_EQ(serial[i].context_switches, parallel[i].context_switches);
    EXPECT_EQ(serial[i].app_sends, parallel[i].app_sends);
    EXPECT_EQ(serial[i].data_frames, parallel[i].data_frames);
    EXPECT_EQ(serial[i].ctl_frames, parallel[i].ctl_frames);
    ASSERT_EQ(serial[i].slots.size(), parallel[i].slots.size());
    for (std::size_t s = 0; s < serial[i].slots.size(); ++s) {
      EXPECT_EQ(serial[i].slots[s].checksum, parallel[i].slots[s].checksum);
      EXPECT_EQ(serial[i].slots[s].finish_time,
                parallel[i].slots[s].finish_time);
    }
  }
}

TEST(Engine, EndTimeIsMaxClock) {
  Engine e;
  e.spawn("a", [&] { e.advance(100); });
  e.spawn("b", [&] { e.advance(700); });
  auto out = e.run();
  EXPECT_EQ(out.end_time, 700);
}

}  // namespace
}  // namespace sdrmpi::sim
