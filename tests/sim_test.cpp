// Unit tests for the discrete-event engine: scheduling order, virtual
// clocks, block/wake, crash unwinding, deadlock and time-limit detection.
#include <gtest/gtest.h>

#include <vector>

#include "sdrmpi/sim/engine.hpp"

namespace sdrmpi::sim {
namespace {

TEST(Engine, RunsProcessesToCompletion) {
  Engine e;
  int done = 0;
  e.spawn("a", [&] { ++done; });
  e.spawn("b", [&] { ++done; });
  auto out = e.run();
  EXPECT_TRUE(out.clean());
  EXPECT_EQ(done, 2);
}

TEST(Engine, AdvanceMovesClock) {
  Engine e;
  e.spawn("a", [&] {
    EXPECT_EQ(e.now(), 0);
    e.advance(100);
    EXPECT_EQ(e.now(), 100);
    e.advance_to(50);  // no-op backwards
    EXPECT_EQ(e.now(), 100);
    e.advance_to(250);
    EXPECT_EQ(e.now(), 250);
  });
  auto out = e.run();
  EXPECT_TRUE(out.clean());
  EXPECT_EQ(out.end_time, 250);
}

TEST(Engine, EventsExecuteInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule(300, [&] { order.push_back(3); });
  e.schedule(100, [&] { order.push_back(1); });
  e.schedule(200, [&] { order.push_back(2); });
  auto out = e.run();
  EXPECT_TRUE(out.clean());
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, EventTieBreakByInsertion) {
  Engine e;
  std::vector<int> order;
  e.schedule(100, [&] { order.push_back(1); });
  e.schedule(100, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Engine, SmallestClockRunsFirst) {
  Engine e;
  std::vector<char> order;
  e.spawn("slow", [&] {
    e.advance(1000);
    e.yield();
    order.push_back('s');
  });
  e.spawn("fast", [&] {
    e.advance(10);
    e.yield();
    order.push_back('f');
  });
  e.run();
  EXPECT_EQ(order, (std::vector<char>{'f', 's'}));
}

TEST(Engine, EventsInterleaveWithProcesses) {
  Engine e;
  std::vector<int> order;
  e.schedule(50, [&] { order.push_back(-1); });
  e.spawn("p", [&] {
    order.push_back(1);  // clock 0 < 50: process first
    e.advance(100);
    e.yield();  // now the event at 50 must run before we continue
    order.push_back(2);
  });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, -1, 2}));
}

TEST(Engine, BlockAndWake) {
  Engine e;
  bool resumed = false;
  const int pid = e.spawn("sleeper", [&] {
    e.block("test");
    resumed = true;
    EXPECT_GE(e.now(), 500);
  });
  e.schedule(500, [&, pid] { e.wake(pid, 500); });
  auto out = e.run();
  EXPECT_TRUE(out.clean());
  EXPECT_TRUE(resumed);
}

TEST(Engine, WakeOnRunnableIsNoop) {
  Engine e;
  const int pid = e.spawn("p", [&] { e.advance(10); });
  e.wake(pid, 999);  // not blocked: must not touch the clock
  auto out = e.run();
  EXPECT_TRUE(out.clean());
  EXPECT_EQ(e.process(pid).clock(), 10);
}

TEST(Engine, DeadlockDetected) {
  Engine e;
  e.spawn("a", [&] { e.block("never"); });
  e.spawn("b", [&] { e.block("never"); });
  auto out = e.run();
  EXPECT_TRUE(out.deadlock);
  EXPECT_EQ(out.blocked_pids.size(), 2u);
  EXPECT_EQ(e.process(0).block_reason(), "never");
}

TEST(Engine, NoDeadlockWhenAllFinish) {
  Engine e;
  const int pid = e.spawn("a", [&] { e.block("waiting"); });
  e.spawn("b", [&, pid] {
    e.advance(10);
    e.wake(pid, e.now());
  });
  auto out = e.run();
  EXPECT_FALSE(out.deadlock);
  EXPECT_TRUE(out.clean());
}

TEST(Engine, CrashUnwindsBlockedProcess) {
  Engine e;
  bool after_block = false;
  const int pid = e.spawn("victim", [&] {
    e.block("forever");
    after_block = true;  // must never run
  });
  e.schedule(100, [&, pid] { e.request_crash(pid); });
  auto out = e.run();
  EXPECT_FALSE(out.deadlock);
  EXPECT_FALSE(after_block);
  EXPECT_TRUE(e.crashed(pid));
}

TEST(Engine, CrashAtYieldPoint) {
  Engine e;
  int steps = 0;
  const int pid = e.spawn("victim", [&] {
    for (int i = 0; i < 100; ++i) {
      e.advance(10);
      e.yield();
      ++steps;
    }
  });
  e.schedule(255, [&, pid] { e.request_crash(pid); });
  auto out = e.run();
  EXPECT_TRUE(e.crashed(pid));
  EXPECT_LT(steps, 100);
  EXPECT_FALSE(out.deadlock);
}

TEST(Engine, RaiiRunsDuringCrashUnwind) {
  Engine e;
  bool destroyed = false;
  struct Sentinel {
    bool* flag;
    ~Sentinel() { *flag = true; }
  };
  const int pid = e.spawn("victim", [&] {
    Sentinel s{&destroyed};
    e.block("forever");
  });
  e.schedule(10, [&, pid] { e.request_crash(pid); });
  e.run();
  EXPECT_TRUE(destroyed);
}

TEST(Engine, FailedProcessReported) {
  Engine e;
  e.spawn("thrower", [] { throw std::runtime_error("boom"); });
  auto out = e.run();
  EXPECT_FALSE(out.clean());
  ASSERT_EQ(out.failed_pids.size(), 1u);
  EXPECT_NE(e.process(out.failed_pids[0]).error(), nullptr);
}

TEST(Engine, TimeLimit) {
  Engine e;
  e.set_time_limit(1000);
  e.spawn("runner", [&] {
    for (;;) {
      e.advance(100);
      e.yield();
    }
  });
  auto out = e.run();
  EXPECT_TRUE(out.time_limit_hit);
  EXPECT_FALSE(out.clean());
}

TEST(Engine, SpawnDuringRun) {
  Engine e;
  std::vector<int> order;
  e.spawn("parent", [&] {
    e.advance(100);
    order.push_back(1);
    e.spawn("child", [&] {
      EXPECT_GE(e.now(), 100);  // child starts at spawn time
      order.push_back(2);
    });
    e.advance(10);
    e.yield();
    order.push_back(3);
  });
  auto out = e.run();
  EXPECT_TRUE(out.clean());
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1);
  // child (clock 100) runs before parent resumes (clock 110)
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(order[2], 3);
}

TEST(Engine, MaybeYieldSkipsWhenNothingOlder) {
  Engine e;
  std::uint64_t switches_before = 0;
  e.spawn("lonely", [&] {
    for (int i = 0; i < 1000; ++i) {
      e.advance(1);
      e.maybe_yield();  // no other entity: should not context-switch
    }
  });
  auto out = e.run();
  switches_before = out.context_switches;
  // One switch in, one out.
  EXPECT_LE(switches_before, 2u);
}

TEST(Engine, DeterministicOutcome) {
  auto run_once = [] {
    Engine e;
    std::vector<int> order;
    for (int p = 0; p < 4; ++p) {
      e.spawn("p" + std::to_string(p), [&, p] {
        for (int i = 0; i < 5; ++i) {
          e.advance(10 * (p + 1));
          e.yield();
          order.push_back(p);
        }
      });
    }
    e.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Engine, CurrentOutsideProcessThrows) {
  Engine e;
  EXPECT_THROW(e.current(), std::logic_error);
  EXPECT_FALSE(e.in_process_context());
}

TEST(Engine, EndTimeIsMaxClock) {
  Engine e;
  e.spawn("a", [&] { e.advance(100); });
  e.spawn("b", [&] { e.advance(700); });
  auto out = e.run();
  EXPECT_EQ(out.end_time, 700);
}

}  // namespace
}  // namespace sdrmpi::sim
