// Symbolic payload contents: digests equal fnv1a ground truth, lazy
// materialization happens exactly once, Corrupt is an O(1) wrapper whose
// digest differs from its base, the per-shape digest memo makes repeated
// shapes free, and the symbolic end-to-end path (symbolic send → sink or
// buffered receive, redMPI detection) behaves exactly like raw bytes.
#include <gtest/gtest.h>

#include <vector>

#include "sdrmpi/net/content.hpp"
#include "sdrmpi/net/payload.hpp"
#include "sdrmpi/util/byte_counter.hpp"
#include "sdrmpi/util/hash.hpp"
#include "test_support.hpp"

namespace sdrmpi {
namespace {

using net::ContentDesc;
using net::ContentKind;
using net::Payload;

// ------------------------------------------------------ digest ground truth

TEST(SymbolicPayload, ZerosDigestMatchesFnv1aGroundTruth) {
  util::BufferPool pool;
  for (std::size_t n : {1u, 7u, 8u, 63u, 64u, 1000u, 4097u}) {
    Payload p = Payload::zeros(&pool, n);
    const std::vector<std::byte> ref(n, std::byte{0});
    EXPECT_EQ(p.digest(), util::fnv1a(ref)) << "n=" << n;
    // And the closed form agrees with the materialized bytes.
    EXPECT_EQ(p.digest(), util::fnv1a(p.bytes())) << "n=" << n;
  }
}

TEST(SymbolicPayload, PatternDigestMatchesMaterializedBytes) {
  util::BufferPool pool;
  for (std::size_t n : {1u, 3u, 8u, 9u, 255u, 256u, 10000u}) {
    Payload p = Payload::pattern(&pool, 0xfeedULL + n, n);
    const std::uint64_t symbolic_digest = p.digest();  // before materializing
    EXPECT_FALSE(p.is_materialized()) << "digest() must not materialize";
    EXPECT_EQ(symbolic_digest, util::fnv1a(p.bytes())) << "n=" << n;
  }
}

TEST(SymbolicPayload, PatternBytesAreTheDocumentedGenerator) {
  util::BufferPool pool;
  Payload p = Payload::pattern(&pool, 0xabcULL, 100);
  const std::byte* d = p.data();
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(d[i], net::pattern_byte(0xabcULL, i)) << "i=" << i;
  }
}

TEST(SymbolicPayload, EmptyHandleDigestsLikeEmptySpan) {
  EXPECT_EQ(Payload{}.digest(), util::kFnvOffset);
  EXPECT_EQ(util::fnv1a({}), util::kFnvOffset);
}

// --------------------------------------------------- slice/concat algebra

TEST(SymbolicPayload, SliceOfPatternStaysSymbolicAndExact) {
  util::BufferPool pool;
  Payload base = Payload::pattern(&pool, 0x51edULL, 1000);
  Payload mid = Payload::slice(&pool, base, 123, 456);
  EXPECT_EQ(mid.kind(), net::ContentKind::Pattern);
  EXPECT_FALSE(mid.is_materialized());
  EXPECT_EQ(mid.size(), 456u);
  const std::uint64_t d = mid.digest();
  EXPECT_FALSE(mid.is_materialized()) << "digest() must not materialize";
  EXPECT_EQ(d, util::fnv1a(base.bytes().subspan(123, 456)));
  // Slices of slices compose: stream offsets add.
  Payload nested = Payload::slice(&pool, mid, 7, 100);
  EXPECT_EQ(nested.desc().offset, 130u);
  EXPECT_EQ(nested.digest(), util::fnv1a(base.bytes().subspan(130, 100)));
}

TEST(SymbolicPayload, SliceOfZerosStaysZeros) {
  util::BufferPool pool;
  Payload base = Payload::zeros(&pool, 1 << 20);
  Payload s = Payload::slice(&pool, base, 12345, 6789);
  EXPECT_EQ(s.kind(), net::ContentKind::Zeros);
  EXPECT_EQ(s.digest(), net::fnv1a_zeros(6789));
}

TEST(SymbolicPayload, SliceOfRawCopiesTheRange) {
  util::BufferPool pool;
  std::vector<std::byte> bytes(64);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<std::byte>(i);
  }
  Payload base = Payload::copy_of(&pool, bytes);
  Payload s = Payload::slice(&pool, base, 8, 16);
  EXPECT_EQ(s.kind(), net::ContentKind::Raw);
  EXPECT_EQ(s.size(), 16u);
  EXPECT_EQ(s[0], std::byte{8});
  EXPECT_EQ(s[15], std::byte{23});
  // Full-range slices alias instead of copying.
  Payload whole = Payload::slice(&pool, base, 0, 64);
  EXPECT_EQ(whole.data(), base.data());
  EXPECT_EQ(base.use_count(), 2u);
}

TEST(SymbolicPayload, ConcatRejoinsContiguousPatternSlices) {
  util::BufferPool pool;
  Payload base = Payload::pattern(&pool, 0xc4a7ULL, 999);
  // Split into three uneven segments and rejoin: the inverse of slice.
  const Payload parts[3] = {Payload::slice(&pool, base, 0, 100),
                            Payload::slice(&pool, base, 100, 500),
                            Payload::slice(&pool, base, 600, 399)};
  Payload joined = Payload::concat_payloads(&pool, parts);
  EXPECT_EQ(joined.kind(), net::ContentKind::Pattern);
  EXPECT_FALSE(joined.is_materialized());
  EXPECT_EQ(joined.size(), 999u);
  EXPECT_EQ(joined.digest(), base.digest());
}

TEST(SymbolicPayload, ConcatOfZerosStaysZeros) {
  util::BufferPool pool;
  const Payload parts[3] = {Payload::zeros(&pool, 10), Payload{},
                            Payload::zeros(&pool, 30)};
  Payload joined = Payload::concat_payloads(&pool, parts);
  EXPECT_EQ(joined.kind(), net::ContentKind::Zeros);
  EXPECT_EQ(joined.size(), 40u);
  EXPECT_EQ(joined.digest(), net::fnv1a_zeros(40));
}

TEST(SymbolicPayload, ConcatOfMixedContentsMaterializesExactBytes) {
  util::BufferPool pool;
  // Non-contiguous pattern parts (both restart at offset 0) cannot merge
  // symbolically; the generic path must still produce the exact bytes.
  const Payload parts[2] = {Payload::pattern(&pool, 0x1ULL, 24),
                            Payload::pattern(&pool, 0x2ULL, 40)};
  Payload joined = Payload::concat_payloads(&pool, parts);
  EXPECT_EQ(joined.kind(), net::ContentKind::Raw);
  ASSERT_EQ(joined.size(), 64u);
  for (std::size_t i = 0; i < 24; ++i) {
    EXPECT_EQ(joined[i], net::pattern_byte(0x1ULL, i));
  }
  for (std::size_t i = 0; i < 40; ++i) {
    EXPECT_EQ(joined[24 + i], net::pattern_byte(0x2ULL, i));
  }
  // Single-part concat aliases.
  const Payload one[1] = {parts[0]};
  Payload same = Payload::concat_payloads(&pool, one);
  EXPECT_EQ(same.desc().seed, 0x1ULL);
  EXPECT_EQ(same.size(), 24u);
}

// ------------------------------------------------------ lazy materialization

TEST(SymbolicPayload, MaterializationHappensExactlyOnce) {
  util::BufferPool pool;
  Payload p = Payload::pattern(&pool, 0x11ULL, 5000);
  Payload alias = p;
  EXPECT_FALSE(p.is_materialized());

  const std::uint64_t mat0 = util::byte_counters().materializations;
  const std::uint64_t copied0 = util::byte_counters().bytes_copied;
  const std::byte* d1 = p.data();
  EXPECT_TRUE(p.is_materialized());
  EXPECT_TRUE(alias.is_materialized());  // shared header
  EXPECT_EQ(util::byte_counters().materializations - mat0, 1u);
  EXPECT_EQ(util::byte_counters().bytes_copied - copied0, 5000u);

  // Further access — including through the alias — reuses the same bytes.
  const std::byte* d2 = alias.data();
  EXPECT_EQ(d1, d2);
  EXPECT_EQ(util::byte_counters().materializations - mat0, 1u);
  EXPECT_EQ(util::byte_counters().bytes_copied - copied0, 5000u);
}

TEST(SymbolicPayload, DigestNeverMaterializesAndIsCached) {
  util::BufferPool pool;
  const std::uint64_t mat0 = util::byte_counters().materializations;
  Payload p = Payload::pattern(&pool, 0x222ULL, 1 << 20);
  const std::uint64_t h0 = util::byte_counters().bytes_hashed;
  (void)p.digest();
  EXPECT_EQ(util::byte_counters().materializations, mat0);
  EXPECT_GE(util::byte_counters().bytes_hashed - h0, 1u << 20);
  // Cached in the header: a second digest() hashes nothing.
  const std::uint64_t h1 = util::byte_counters().bytes_hashed;
  (void)p.digest();
  EXPECT_EQ(util::byte_counters().bytes_hashed, h1);
}

TEST(SymbolicPayload, PatternDigestMemoMakesRepeatedShapesFree) {
  util::BufferPool pool;
  // Same (seed, len) as a fresh payload: the per-thread memo serves it.
  Payload a = Payload::pattern(&pool, 0x333ULL, 123457);
  (void)a.digest();
  const std::uint64_t h0 = util::byte_counters().bytes_hashed;
  Payload b = Payload::pattern(&pool, 0x333ULL, 123457);
  EXPECT_EQ(b.digest(), a.digest());
  EXPECT_EQ(util::byte_counters().bytes_hashed, h0) << "memo miss";
}

TEST(SymbolicPayload, GigabyteZerosDigestIsClosedForm) {
  // O(log n) closed form: no hashing, no materialization, no allocation of
  // the logical size — this is the GB-scale case the design exists for.
  util::BufferPool pool;
  const std::size_t gb = std::size_t{1} << 30;
  Payload p = Payload::zeros(&pool, gb);
  const std::uint64_t h0 = util::byte_counters().bytes_hashed;
  const std::uint64_t c0 = util::byte_counters().bytes_copied;
  EXPECT_EQ(p.digest(), net::fnv1a_zeros(gb));
  EXPECT_EQ(util::byte_counters().bytes_hashed, h0);
  EXPECT_EQ(util::byte_counters().bytes_copied, c0);
  EXPECT_FALSE(p.is_materialized());
  EXPECT_EQ(p.size(), gb);
}

// ----------------------------------------------------------------- Corrupt

TEST(SymbolicPayload, CorruptDigestDiffersFromBaseAndMatchesBytes) {
  util::BufferPool pool;
  // Over every base kind, including a Raw buffer.
  const std::vector<std::byte> raw_bytes(300, std::byte{0x5a});
  const Payload bases[] = {
      Payload::copy_of(&pool, raw_bytes),
      Payload::zeros(&pool, 300),
      Payload::pattern(&pool, 0x444ULL, 300),
  };
  for (const Payload& base : bases) {
    const std::uint64_t bit = 7 * 8 + 6;  // byte 7, bit 6 (the SDC position)
    Payload c = Payload::corrupt(&pool, base, bit);
    EXPECT_EQ(c.size(), base.size());
    EXPECT_NE(c.digest(), base.digest());
    EXPECT_EQ(c.digest(), util::fnv1a(c.bytes()));
    // Exactly one bit differs from the base contents.
    const std::byte* cb = c.data();
    const std::byte* bb = base.data();
    for (std::size_t i = 0; i < c.size(); ++i) {
      if (i == 7) {
        EXPECT_EQ(cb[i], bb[i] ^ std::byte{0x40});
      } else {
        EXPECT_EQ(cb[i], bb[i]) << "i=" << i;
      }
    }
  }
}

TEST(SymbolicPayload, CorruptIsO1AtCreation) {
  util::BufferPool pool;
  Payload base = Payload::pattern(&pool, 0x555ULL, 1 << 22);
  const std::uint64_t c0 = util::byte_counters().bytes_copied;
  Payload c = Payload::corrupt(&pool, base, 6);
  EXPECT_EQ(util::byte_counters().bytes_copied, c0) << "corrupt cloned bytes";
  EXPECT_FALSE(c.is_materialized());
  EXPECT_EQ(base.use_count(), 2u);  // aliased, not copied
}

// ----------------------------------------------------- pool/slab mechanics

TEST(SymbolicPayload, MaterializedSlabReturnsToItsOwnPool) {
  util::BufferPool pool_a;
  util::BufferPool pool_b;
  {
    Payload pa = Payload::pattern(&pool_a, 1, 500);
    Payload pb = Payload::pattern(&pool_b, 2, 500);
    (void)pa.data();
    (void)pb.data();
  }
  // Header slab + materialized slab per payload, each home again.
  EXPECT_EQ(pool_a.cached_slabs(), 2u);
  EXPECT_EQ(pool_b.cached_slabs(), 2u);
}

TEST(SymbolicPayload, PoollessSymbolicHandlesUseTheHeap) {
  Payload p = Payload::pattern(nullptr, 3, 64);
  EXPECT_EQ(p.digest(), util::fnv1a(p.bytes()));
}

// --------------------------------------------------------- end-to-end MPI

TEST(SymbolicEndToEnd, SymbolicSendToSinkRecvNeverTouchesBytes) {
  core::RunConfig cfg;
  cfg.nranks = 2;
  const std::size_t size = std::size_t{4} << 20;  // rendezvous-sized
  auto res = core::run(cfg, [size](mpi::Env& env) {
    auto& world = env.world();
    const auto desc = net::ContentDesc::pattern(0x777ULL, size);
    if (env.rank() == 0) {
      world.send_symbolic(desc, 1, 5);
    } else {
      auto req = world.irecv_sink(size, 0, 5);
      world.wait(req);
      EXPECT_EQ(req->status.bytes, size);
      EXPECT_FALSE(req->recv_payload.is_materialized());
      // The delivered handle digests to the sender's contents.
      util::Checksum cs;
      cs.add_u64(req->recv_payload.digest());
      env.report_checksum(cs.digest());
    }
  });
  ASSERT_TRUE(test::run_clean(res));
  // Wire accounting saw the full message; the host never copied it.
  EXPECT_GE(res.fabric.payload_bytes, size);
  EXPECT_LT(res.bytes_copied, std::size_t{64} << 10);
}

TEST(SymbolicEndToEnd, SymbolicSendIntoRealBufferMaterializesTheContents) {
  core::RunConfig cfg;
  cfg.nranks = 2;
  constexpr std::size_t kSize = 2048;
  auto res = core::run(cfg, [](mpi::Env& env) {
    auto& world = env.world();
    if (env.rank() == 0) {
      world.send_symbolic(net::ContentDesc::pattern(0x888ULL, kSize), 1, 5);
    } else {
      std::vector<std::byte> buf(kSize);
      world.recv(std::span<std::byte>(buf), 0, 5);
      for (std::size_t i = 0; i < kSize; ++i) {
        ASSERT_EQ(buf[i], net::pattern_byte(0x888ULL, i)) << "i=" << i;
      }
    }
  });
  ASSERT_TRUE(test::run_clean(res));
}

TEST(SymbolicEndToEnd, SinkRecvOfRawSendKeepsDeliveredContents) {
  core::RunConfig cfg;
  cfg.nranks = 2;
  auto res = core::run(cfg, [](mpi::Env& env) {
    auto& world = env.world();
    const std::vector<std::byte> data(777, std::byte{0x31});
    if (env.rank() == 0) {
      world.send(std::span<const std::byte>(data), 1, 5);
    } else {
      auto req = world.irecv_sink(1024, 0, 5);
      world.wait(req);
      EXPECT_EQ(req->status.bytes, 777u);
      EXPECT_EQ(req->recv_payload.digest(), util::fnv1a(data));
    }
  });
  ASSERT_TRUE(test::run_clean(res));
}

// redMPI SDC pin: the O(1) Corrupt wrapper must still be detected through
// digest comparison — on the raw path AND on the fully symbolic path.
TEST(SymbolicEndToEnd, RedMpiDetectsCorruptWrapperOnSymbolicTraffic) {
  for (const bool symbolic : {false, true}) {
    core::RunConfig cfg;
    cfg.nranks = 2;
    cfg.replication = 2;
    cfg.protocol = core::ProtocolKind::RedMpiSd;
    cfg.sdc.push_back({.slot = 0, .at_send = 1});
    auto res = core::run(cfg, [symbolic](mpi::Env& env) {
      auto& world = env.world();
      const std::size_t size = 4096;
      const std::vector<std::byte> data(size, std::byte{0x21});
      const auto desc = net::ContentDesc::pattern(0x999ULL, size);
      const int peer = env.rank() ^ 1;
      for (int i = 0; i < 3; ++i) {
        if (env.rank() == 0) {
          if (symbolic) {
            world.send_symbolic(desc, peer, 1);
            (void)world.recv_sink(size, peer, 1);
          } else {
            std::vector<std::byte> buf(size);
            world.send(std::span<const std::byte>(data), peer, 1);
            world.recv(std::span<std::byte>(buf), peer, 1);
          }
        } else {
          if (symbolic) {
            (void)world.recv_sink(size, peer, 1);
            world.send_symbolic(desc, peer, 1);
          } else {
            std::vector<std::byte> buf(size);
            world.recv(std::span<std::byte>(buf), peer, 1);
            world.send(std::span<const std::byte>(data), peer, 1);
          }
        }
      }
    });
    ASSERT_TRUE(test::run_clean(res)) << "symbolic=" << symbolic;
    EXPECT_GE(res.protocol.sdc_detected, 1u) << "symbolic=" << symbolic;
  }
}

}  // namespace
}  // namespace sdrmpi
