// Symbolic payload contents: digests equal fnv1a ground truth, lazy
// materialization happens exactly once, Corrupt is an O(1) wrapper whose
// digest differs from its base, the per-shape digest memo makes repeated
// shapes free, and the symbolic end-to-end path (symbolic send → sink or
// buffered receive, redMPI detection) behaves exactly like raw bytes.
#include <gtest/gtest.h>

#include <vector>

#include "sdrmpi/net/content.hpp"
#include "sdrmpi/net/payload.hpp"
#include "sdrmpi/util/byte_counter.hpp"
#include "sdrmpi/util/hash.hpp"
#include "test_support.hpp"

namespace sdrmpi {
namespace {

using net::ContentDesc;
using net::ContentKind;
using net::Payload;

// ------------------------------------------------------ digest ground truth

TEST(SymbolicPayload, ZerosDigestMatchesFnv1aGroundTruth) {
  util::BufferPool pool;
  for (std::size_t n : {1u, 7u, 8u, 63u, 64u, 1000u, 4097u}) {
    Payload p = Payload::zeros(&pool, n);
    const std::vector<std::byte> ref(n, std::byte{0});
    EXPECT_EQ(p.digest(), util::fnv1a(ref)) << "n=" << n;
    // And the closed form agrees with the materialized bytes.
    EXPECT_EQ(p.digest(), util::fnv1a(p.bytes())) << "n=" << n;
  }
}

TEST(SymbolicPayload, PatternDigestMatchesMaterializedBytes) {
  util::BufferPool pool;
  for (std::size_t n : {1u, 3u, 8u, 9u, 255u, 256u, 10000u}) {
    Payload p = Payload::pattern(&pool, 0xfeedULL + n, n);
    const std::uint64_t symbolic_digest = p.digest();  // before materializing
    EXPECT_FALSE(p.is_materialized()) << "digest() must not materialize";
    EXPECT_EQ(symbolic_digest, util::fnv1a(p.bytes())) << "n=" << n;
  }
}

TEST(SymbolicPayload, PatternBytesAreTheDocumentedGenerator) {
  util::BufferPool pool;
  Payload p = Payload::pattern(&pool, 0xabcULL, 100);
  const std::byte* d = p.data();
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(d[i], net::pattern_byte(0xabcULL, i)) << "i=" << i;
  }
}

TEST(SymbolicPayload, EmptyHandleDigestsLikeEmptySpan) {
  EXPECT_EQ(Payload{}.digest(), util::kFnvOffset);
  EXPECT_EQ(util::fnv1a({}), util::kFnvOffset);
}

// ------------------------------------------------------ lazy materialization

TEST(SymbolicPayload, MaterializationHappensExactlyOnce) {
  util::BufferPool pool;
  Payload p = Payload::pattern(&pool, 0x11ULL, 5000);
  Payload alias = p;
  EXPECT_FALSE(p.is_materialized());

  const std::uint64_t mat0 = util::byte_counters().materializations;
  const std::uint64_t copied0 = util::byte_counters().bytes_copied;
  const std::byte* d1 = p.data();
  EXPECT_TRUE(p.is_materialized());
  EXPECT_TRUE(alias.is_materialized());  // shared header
  EXPECT_EQ(util::byte_counters().materializations - mat0, 1u);
  EXPECT_EQ(util::byte_counters().bytes_copied - copied0, 5000u);

  // Further access — including through the alias — reuses the same bytes.
  const std::byte* d2 = alias.data();
  EXPECT_EQ(d1, d2);
  EXPECT_EQ(util::byte_counters().materializations - mat0, 1u);
  EXPECT_EQ(util::byte_counters().bytes_copied - copied0, 5000u);
}

TEST(SymbolicPayload, DigestNeverMaterializesAndIsCached) {
  util::BufferPool pool;
  const std::uint64_t mat0 = util::byte_counters().materializations;
  Payload p = Payload::pattern(&pool, 0x222ULL, 1 << 20);
  const std::uint64_t h0 = util::byte_counters().bytes_hashed;
  (void)p.digest();
  EXPECT_EQ(util::byte_counters().materializations, mat0);
  EXPECT_GE(util::byte_counters().bytes_hashed - h0, 1u << 20);
  // Cached in the header: a second digest() hashes nothing.
  const std::uint64_t h1 = util::byte_counters().bytes_hashed;
  (void)p.digest();
  EXPECT_EQ(util::byte_counters().bytes_hashed, h1);
}

TEST(SymbolicPayload, PatternDigestMemoMakesRepeatedShapesFree) {
  util::BufferPool pool;
  // Same (seed, len) as a fresh payload: the per-thread memo serves it.
  Payload a = Payload::pattern(&pool, 0x333ULL, 123457);
  (void)a.digest();
  const std::uint64_t h0 = util::byte_counters().bytes_hashed;
  Payload b = Payload::pattern(&pool, 0x333ULL, 123457);
  EXPECT_EQ(b.digest(), a.digest());
  EXPECT_EQ(util::byte_counters().bytes_hashed, h0) << "memo miss";
}

TEST(SymbolicPayload, GigabyteZerosDigestIsClosedForm) {
  // O(log n) closed form: no hashing, no materialization, no allocation of
  // the logical size — this is the GB-scale case the design exists for.
  util::BufferPool pool;
  const std::size_t gb = std::size_t{1} << 30;
  Payload p = Payload::zeros(&pool, gb);
  const std::uint64_t h0 = util::byte_counters().bytes_hashed;
  const std::uint64_t c0 = util::byte_counters().bytes_copied;
  EXPECT_EQ(p.digest(), net::fnv1a_zeros(gb));
  EXPECT_EQ(util::byte_counters().bytes_hashed, h0);
  EXPECT_EQ(util::byte_counters().bytes_copied, c0);
  EXPECT_FALSE(p.is_materialized());
  EXPECT_EQ(p.size(), gb);
}

// ----------------------------------------------------------------- Corrupt

TEST(SymbolicPayload, CorruptDigestDiffersFromBaseAndMatchesBytes) {
  util::BufferPool pool;
  // Over every base kind, including a Raw buffer.
  const std::vector<std::byte> raw_bytes(300, std::byte{0x5a});
  const Payload bases[] = {
      Payload::copy_of(&pool, raw_bytes),
      Payload::zeros(&pool, 300),
      Payload::pattern(&pool, 0x444ULL, 300),
  };
  for (const Payload& base : bases) {
    const std::uint64_t bit = 7 * 8 + 6;  // byte 7, bit 6 (the SDC position)
    Payload c = Payload::corrupt(&pool, base, bit);
    EXPECT_EQ(c.size(), base.size());
    EXPECT_NE(c.digest(), base.digest());
    EXPECT_EQ(c.digest(), util::fnv1a(c.bytes()));
    // Exactly one bit differs from the base contents.
    const std::byte* cb = c.data();
    const std::byte* bb = base.data();
    for (std::size_t i = 0; i < c.size(); ++i) {
      if (i == 7) {
        EXPECT_EQ(cb[i], bb[i] ^ std::byte{0x40});
      } else {
        EXPECT_EQ(cb[i], bb[i]) << "i=" << i;
      }
    }
  }
}

TEST(SymbolicPayload, CorruptIsO1AtCreation) {
  util::BufferPool pool;
  Payload base = Payload::pattern(&pool, 0x555ULL, 1 << 22);
  const std::uint64_t c0 = util::byte_counters().bytes_copied;
  Payload c = Payload::corrupt(&pool, base, 6);
  EXPECT_EQ(util::byte_counters().bytes_copied, c0) << "corrupt cloned bytes";
  EXPECT_FALSE(c.is_materialized());
  EXPECT_EQ(base.use_count(), 2u);  // aliased, not copied
}

// ----------------------------------------------------- pool/slab mechanics

TEST(SymbolicPayload, MaterializedSlabReturnsToItsOwnPool) {
  util::BufferPool pool_a;
  util::BufferPool pool_b;
  {
    Payload pa = Payload::pattern(&pool_a, 1, 500);
    Payload pb = Payload::pattern(&pool_b, 2, 500);
    (void)pa.data();
    (void)pb.data();
  }
  // Header slab + materialized slab per payload, each home again.
  EXPECT_EQ(pool_a.cached_slabs(), 2u);
  EXPECT_EQ(pool_b.cached_slabs(), 2u);
}

TEST(SymbolicPayload, PoollessSymbolicHandlesUseTheHeap) {
  Payload p = Payload::pattern(nullptr, 3, 64);
  EXPECT_EQ(p.digest(), util::fnv1a(p.bytes()));
}

// --------------------------------------------------------- end-to-end MPI

TEST(SymbolicEndToEnd, SymbolicSendToSinkRecvNeverTouchesBytes) {
  core::RunConfig cfg;
  cfg.nranks = 2;
  const std::size_t size = std::size_t{4} << 20;  // rendezvous-sized
  auto res = core::run(cfg, [size](mpi::Env& env) {
    auto& world = env.world();
    const auto desc = net::ContentDesc::pattern(0x777ULL, size);
    if (env.rank() == 0) {
      world.send_symbolic(desc, 1, 5);
    } else {
      auto req = world.irecv_sink(size, 0, 5);
      world.wait(req);
      EXPECT_EQ(req->status.bytes, size);
      EXPECT_FALSE(req->recv_payload.is_materialized());
      // The delivered handle digests to the sender's contents.
      util::Checksum cs;
      cs.add_u64(req->recv_payload.digest());
      env.report_checksum(cs.digest());
    }
  });
  ASSERT_TRUE(test::run_clean(res));
  // Wire accounting saw the full message; the host never copied it.
  EXPECT_GE(res.fabric.payload_bytes, size);
  EXPECT_LT(res.bytes_copied, std::size_t{64} << 10);
}

TEST(SymbolicEndToEnd, SymbolicSendIntoRealBufferMaterializesTheContents) {
  core::RunConfig cfg;
  cfg.nranks = 2;
  constexpr std::size_t kSize = 2048;
  auto res = core::run(cfg, [](mpi::Env& env) {
    auto& world = env.world();
    if (env.rank() == 0) {
      world.send_symbolic(net::ContentDesc::pattern(0x888ULL, kSize), 1, 5);
    } else {
      std::vector<std::byte> buf(kSize);
      world.recv(std::span<std::byte>(buf), 0, 5);
      for (std::size_t i = 0; i < kSize; ++i) {
        ASSERT_EQ(buf[i], net::pattern_byte(0x888ULL, i)) << "i=" << i;
      }
    }
  });
  ASSERT_TRUE(test::run_clean(res));
}

TEST(SymbolicEndToEnd, SinkRecvOfRawSendKeepsDeliveredContents) {
  core::RunConfig cfg;
  cfg.nranks = 2;
  auto res = core::run(cfg, [](mpi::Env& env) {
    auto& world = env.world();
    const std::vector<std::byte> data(777, std::byte{0x31});
    if (env.rank() == 0) {
      world.send(std::span<const std::byte>(data), 1, 5);
    } else {
      auto req = world.irecv_sink(1024, 0, 5);
      world.wait(req);
      EXPECT_EQ(req->status.bytes, 777u);
      EXPECT_EQ(req->recv_payload.digest(), util::fnv1a(data));
    }
  });
  ASSERT_TRUE(test::run_clean(res));
}

// redMPI SDC pin: the O(1) Corrupt wrapper must still be detected through
// digest comparison — on the raw path AND on the fully symbolic path.
TEST(SymbolicEndToEnd, RedMpiDetectsCorruptWrapperOnSymbolicTraffic) {
  for (const bool symbolic : {false, true}) {
    core::RunConfig cfg;
    cfg.nranks = 2;
    cfg.replication = 2;
    cfg.protocol = core::ProtocolKind::RedMpiSd;
    cfg.sdc.push_back({.slot = 0, .at_send = 1});
    auto res = core::run(cfg, [symbolic](mpi::Env& env) {
      auto& world = env.world();
      const std::size_t size = 4096;
      const std::vector<std::byte> data(size, std::byte{0x21});
      const auto desc = net::ContentDesc::pattern(0x999ULL, size);
      const int peer = env.rank() ^ 1;
      for (int i = 0; i < 3; ++i) {
        if (env.rank() == 0) {
          if (symbolic) {
            world.send_symbolic(desc, peer, 1);
            (void)world.recv_sink(size, peer, 1);
          } else {
            std::vector<std::byte> buf(size);
            world.send(std::span<const std::byte>(data), peer, 1);
            world.recv(std::span<std::byte>(buf), peer, 1);
          }
        } else {
          if (symbolic) {
            (void)world.recv_sink(size, peer, 1);
            world.send_symbolic(desc, peer, 1);
          } else {
            std::vector<std::byte> buf(size);
            world.recv(std::span<std::byte>(buf), peer, 1);
            world.send(std::span<const std::byte>(data), peer, 1);
          }
        }
      }
    });
    ASSERT_TRUE(test::run_clean(res)) << "symbolic=" << symbolic;
    EXPECT_GE(res.protocol.sdc_detected, 1u) << "symbolic=" << symbolic;
  }
}

}  // namespace
}  // namespace sdrmpi
